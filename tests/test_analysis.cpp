// Tests for the traffic-analysis layer: DNS harvesting, per-domain
// attribution, time series / burst / period inference, cumulative curves,
// the ACR-domain identifier and report rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/acr_detect.hpp"
#include "analysis/cdf.hpp"
#include "analysis/report.hpp"
#include "analysis/stream.hpp"
#include "analysis/timeseries.hpp"
#include "analysis/traffic.hpp"
#include "common/thread_pool.hpp"
#include "net/pcap.hpp"
#include "net/pcapng.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "dns/message.hpp"

namespace tvacr::analysis {
namespace {

using net::Ipv4Address;

const Ipv4Address kDevice(192, 168, 4, 23);
const Ipv4Address kResolver(9, 9, 9, 9);
const Ipv4Address kServer(23, 0, 1, 10);

net::Packet dns_response_packet(const std::string& name, Ipv4Address address, SimTime t) {
    const auto domain = dns::DomainName::parse(name).value();
    const auto query = make_query(7, domain, dns::RecordType::kA);
    const auto response =
        make_response(query, {dns::ResourceRecord::a(domain, address)},
                      dns::ResponseCode::kNoError);
    const net::FrameBuilder builder(net::MacAddress::local(2), net::MacAddress::local(1));
    return builder.udp(t, net::Endpoint{kResolver, dns::kDnsPort},
                       net::Endpoint{kDevice, 40000}, response.encode());
}

net::Packet tcp_packet(Ipv4Address src, Ipv4Address dst, SimTime t, std::size_t payload_size) {
    const net::FrameBuilder builder(net::MacAddress::local(1), net::MacAddress::local(2));
    const std::uint16_t src_port = src == kDevice ? 50000 : 443;
    const std::uint16_t dst_port = dst == kDevice ? 50000 : 443;
    return builder.tcp(t, net::Endpoint{src, src_port}, net::Endpoint{dst, dst_port}, 1, 1,
                       net::TcpFlags::kAck, Bytes(payload_size, 0xEE));
}

// ------------------------------------------------------------------ DnsMap

TEST(DnsMapTest, HarvestsAddressMappings) {
    DnsMap map;
    const auto packet = dns_response_packet("acr-eu-prd.samsungcloud.tv", kServer, SimTime{});
    map.ingest(net::parse_packet(packet).value());
    EXPECT_EQ(map.responses_seen(), 1U);
    ASSERT_TRUE(map.domain_of(kServer).has_value());
    EXPECT_EQ(*map.domain_of(kServer), "acr-eu-prd.samsungcloud.tv");
    EXPECT_FALSE(map.domain_of(Ipv4Address(1, 1, 1, 1)).has_value());
}

TEST(DnsMapTest, FirstMappingWins) {
    DnsMap map;
    map.ingest(net::parse_packet(dns_response_packet("first.example.com", kServer, SimTime{}))
                   .value());
    map.ingest(net::parse_packet(dns_response_packet("second.example.com", kServer, SimTime{}))
                   .value());
    EXPECT_EQ(*map.domain_of(kServer), "first.example.com");
    EXPECT_EQ(map.queried_names().size(), 2U);
}

TEST(DnsMapTest, IgnoresNonDnsTraffic) {
    DnsMap map;
    map.ingest(net::parse_packet(tcp_packet(kDevice, kServer, SimTime{}, 100)).value());
    EXPECT_EQ(map.responses_seen(), 0U);
    EXPECT_EQ(map.mapping_count(), 0U);
}

// --------------------------------------------------------- CaptureAnalyzer

TEST(CaptureAnalyzerTest, AttributesTrafficByDomainAndDirection) {
    CaptureAnalyzer analyzer(kDevice);
    analyzer.ingest(dns_response_packet("acr-eu-prd.samsungcloud.tv", kServer, SimTime::millis(1)));
    analyzer.ingest(tcp_packet(kDevice, kServer, SimTime::millis(10), 1000));  // up
    analyzer.ingest(tcp_packet(kServer, kDevice, SimTime::millis(20), 300));   // down

    const auto* stats = analyzer.find("acr-eu-prd.samsungcloud.tv");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->packets, 2U);
    EXPECT_EQ(stats->bytes_up, 1000U + 54U);
    EXPECT_EQ(stats->bytes_down, 300U + 54U);
    EXPECT_EQ(stats->events.size(), 2U);
    EXPECT_TRUE(stats->events[0].device_to_server);
    EXPECT_FALSE(stats->events[1].device_to_server);
    EXPECT_NEAR(analyzer.kilobytes_for("acr-eu-prd.samsungcloud.tv"), 1.408, 0.001);
}

TEST(CaptureAnalyzerTest, UnresolvedIpsGetPlaceholderDomain) {
    CaptureAnalyzer analyzer(kDevice);
    analyzer.ingest(tcp_packet(kDevice, Ipv4Address(8, 8, 4, 4), SimTime{}, 64));
    const auto domains = analyzer.domains_by_bytes();
    ASSERT_EQ(domains.size(), 1U);
    ASSERT_NE(analyzer.find("unresolved:8.8.4.4"), nullptr);
    EXPECT_EQ(analyzer.find("unresolved:8.8.4.4")->packets, 1U);
}

TEST(CaptureAnalyzerTest, SortsByBytes) {
    CaptureAnalyzer analyzer(kDevice);
    analyzer.ingest(dns_response_packet("small.example.com", Ipv4Address(23, 0, 1, 1), SimTime{}));
    analyzer.ingest(dns_response_packet("big.example.com", Ipv4Address(23, 0, 2, 1), SimTime{}));
    analyzer.ingest(tcp_packet(kDevice, Ipv4Address(23, 0, 1, 1), SimTime{}, 10));
    analyzer.ingest(tcp_packet(kDevice, Ipv4Address(23, 0, 2, 1), SimTime{}, 5000));
    const auto sorted = analyzer.domains_by_bytes();
    ASSERT_GE(sorted.size(), 2U);
    EXPECT_EQ(sorted[0]->domain, "big.example.com");
}

TEST(CaptureAnalyzerTest, EqualByteDomainsRankAlphabetically) {
    // Regression: domains_by_bytes sorted with std::sort and no tie-break.
    // With enough equal-byte domains (introsort permutes equal elements once
    // past its 16-element insertion-sort threshold) the ranking depended on
    // the sort's internal partitioning — nondeterministic across standard
    // libraries, and a byte-diff in every rendered table. Ties now break
    // alphabetically.
    CaptureAnalyzer analyzer(kDevice);
    const int kTies = 24;
    for (int d = 0; d < kTies; ++d) {
        char name[32];
        std::snprintf(name, sizeof(name), "tie%02d.example.com", d);
        const Ipv4Address server(23, 1, 0, static_cast<std::uint8_t>(d + 1));
        analyzer.ingest(dns_response_packet(name, server, SimTime::millis(d)));
        analyzer.ingest(tcp_packet(kDevice, server, SimTime::millis(100 + d), 400));
    }
    std::vector<std::string> ranked;
    for (const auto* stats : analyzer.domains_by_bytes()) {
        if (stats->domain.rfind("tie", 0) == 0) ranked.push_back(stats->domain);
    }
    ASSERT_EQ(ranked.size(), static_cast<std::size_t>(kTies));
    std::vector<std::string> expected = ranked;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(ranked, expected);
}

// -------------------------------------------------------------- timeseries

std::vector<PacketEvent> periodic_events(SimTime period, int count, std::uint32_t size = 100,
                                         int packets_per_burst = 3) {
    std::vector<PacketEvent> events;
    for (int i = 0; i < count; ++i) {
        for (int j = 0; j < packets_per_burst; ++j) {
            events.push_back(PacketEvent{period * i + SimTime::millis(j * 5), size, true});
        }
    }
    return events;
}

TEST(TimeSeriesTest, BucketizeCountsAndBytes) {
    const auto events = periodic_events(SimTime::seconds(1), 10);
    const auto packets = bucketize(events, SimTime{}, SimTime::seconds(10), SimTime::seconds(1),
                                   SeriesMetric::kPackets);
    ASSERT_EQ(packets.values.size(), 10U);
    for (const double v : packets.values) EXPECT_DOUBLE_EQ(v, 3.0);

    const auto bytes = bucketize(events, SimTime{}, SimTime::seconds(10), SimTime::seconds(1),
                                 SeriesMetric::kBytes);
    for (const double v : bytes.values) EXPECT_DOUBLE_EQ(v, 300.0);
}

TEST(TimeSeriesTest, BucketizeRespectsWindow) {
    const auto events = periodic_events(SimTime::seconds(1), 100);
    const auto series = bucketize(events, SimTime::seconds(50), SimTime::seconds(10),
                                  SimTime::seconds(1), SeriesMetric::kPackets);
    ASSERT_EQ(series.values.size(), 10U);
    EXPECT_DOUBLE_EQ(series.values[0], 3.0);
    EXPECT_EQ(series.time_of(3), SimTime::seconds(53));
}

TEST(TimeSeriesTest, FindBurstsGroupsByGap) {
    const auto events = periodic_events(SimTime::seconds(15), 8);
    const auto bursts = find_bursts(events, SimTime::seconds(5));
    ASSERT_EQ(bursts.size(), 8U);
    EXPECT_EQ(bursts[0].packets, 3U);
    EXPECT_EQ(bursts[0].bytes, 300U);
}

TEST(TimeSeriesTest, CadenceOfRegularTraffic) {
    const auto bursts = find_bursts(periodic_events(SimTime::seconds(15), 20),
                                    SimTime::seconds(5));
    const auto cadence = burst_cadence(bursts);
    EXPECT_EQ(cadence.bursts, 20U);
    EXPECT_NEAR(cadence.mean_interval_s, 15.0, 0.01);
    EXPECT_LT(cadence.cv, 0.01);
}

TEST(TimeSeriesTest, CadenceOfIrregularTrafficHasHighCv) {
    std::vector<PacketEvent> events;
    Rng rng(5);
    SimTime t;
    for (int i = 0; i < 30; ++i) {
        t += SimTime::seconds(rng.uniform(5, 120));
        events.push_back(PacketEvent{t, 100, true});
    }
    const auto cadence = burst_cadence(find_bursts(events, SimTime::seconds(4)));
    EXPECT_GT(cadence.cv, 0.35);
}

TEST(TimeSeriesTest, DominantPeriodRecoversCadence) {
    const auto events = periodic_events(SimTime::seconds(15), 40);
    const double period = dominant_period_seconds(events, SimTime::minutes(10),
                                                  SimTime::seconds(5), SimTime::minutes(2));
    // The autocorrelation peak lands on the fundamental or a small multiple.
    EXPECT_NEAR(std::fmod(period, 15.0), 0.0, 0.6);
    EXPECT_GT(period, 10.0);
}

TEST(TimeSeriesTest, EmptyInputsAreSafe) {
    EXPECT_TRUE(find_bursts({}, SimTime::seconds(1)).empty());
    EXPECT_EQ(burst_cadence({}).bursts, 0U);
    EXPECT_EQ(dominant_period_seconds({}, SimTime::minutes(1), SimTime::seconds(1),
                                      SimTime::seconds(30)),
              0.0);
}

// --------------------------------------------------------------------- cdf

TEST(CdfTest, CumulativeBytesMonotoneAndNormalized) {
    const auto events = periodic_events(SimTime::seconds(10), 6, 500);
    const auto curve = cumulative_bytes(events);
    ASSERT_EQ(curve.size(), events.size());
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].bytes, curve[i - 1].bytes);
        EXPECT_GE(curve[i].fraction, curve[i - 1].fraction);
    }
    EXPECT_DOUBLE_EQ(curve.back().fraction, 1.0);
    EXPECT_EQ(curve.back().bytes, 6U * 3U * 500U);
}

TEST(CdfTest, ResampleStepsHoldLastValue) {
    std::vector<PacketEvent> events = {{SimTime::seconds(10), 100, true},
                                       {SimTime::seconds(30), 300, true}};
    const auto resampled = resample(cumulative_bytes(events), SimTime{}, SimTime::seconds(40),
                                    SimTime::seconds(10));
    ASSERT_EQ(resampled.size(), 5U);
    EXPECT_EQ(resampled[0].bytes, 0U);
    EXPECT_EQ(resampled[1].bytes, 100U);
    EXPECT_EQ(resampled[2].bytes, 100U);
    EXPECT_EQ(resampled[3].bytes, 400U);
    EXPECT_EQ(resampled[4].bytes, 400U);
}

TEST(CdfTest, IdenticalCurvesHaveZeroGap) {
    const auto events = periodic_events(SimTime::seconds(5), 10);
    const auto curve = cumulative_bytes(events);
    EXPECT_DOUBLE_EQ(
        max_fraction_gap(curve, curve, SimTime{}, SimTime::minutes(1), SimTime::seconds(1)), 0.0);
}

TEST(CdfTest, DisjointCurvesHaveLargeGap) {
    std::vector<PacketEvent> early = {{SimTime::seconds(1), 100, true}};
    std::vector<PacketEvent> late = {{SimTime::seconds(59), 100, true}};
    const double gap = max_fraction_gap(cumulative_bytes(early), cumulative_bytes(late),
                                        SimTime{}, SimTime::minutes(1), SimTime::seconds(1));
    EXPECT_GT(gap, 0.9);
}

// -------------------------------------------------------------- acr_detect

TEST(AcrDetectTest, BlocklistMatchesSuffixes) {
    EXPECT_TRUE(is_blocklisted("eu-acr7.alphonso.tv"));
    EXPECT_TRUE(is_blocklisted("log-config.samsungacr.com"));
    EXPECT_TRUE(is_blocklisted("samsungads.com"));
    EXPECT_FALSE(is_blocklisted("netflix.com"));
    EXPECT_FALSE(is_blocklisted("alphonso.tv.evil.example"));
}

CaptureAnalyzer analyzer_with(const std::string& domain, Ipv4Address server,
                              const std::vector<PacketEvent>& events) {
    CaptureAnalyzer analyzer(kDevice);
    analyzer.ingest(dns_response_packet(domain, server, SimTime{}));
    for (const auto& event : events) {
        analyzer.ingest(tcp_packet(event.device_to_server ? kDevice : server,
                                   event.device_to_server ? server : kDevice, event.timestamp,
                                   event.frame_bytes));
    }
    return analyzer;
}

TEST(AcrDetectTest, RegularAcrNamedDomainIsFlagged) {
    const auto analyzer = analyzer_with("eu-acr3.alphonso.tv", kServer,
                                        periodic_events(SimTime::seconds(15), 30));
    const AcrDomainIdentifier identifier;
    const auto domains = identifier.acr_domains(analyzer, nullptr, SimTime::minutes(10));
    ASSERT_EQ(domains.size(), 1U);
    EXPECT_EQ(domains[0], "eu-acr3.alphonso.tv");
}

TEST(AcrDetectTest, AdDomainWithoutAcrNameIsNotFlagged) {
    const auto analyzer = analyzer_with("samsungads.com", kServer,
                                        periodic_events(SimTime::seconds(15), 30));
    const AcrDomainIdentifier identifier;
    EXPECT_TRUE(identifier.acr_domains(analyzer, nullptr, SimTime::minutes(10)).empty());
}

TEST(AcrDetectTest, AcrNameWithoutCorroborationIsNotFlagged) {
    // "acr" in the name but irregular contact and not on any blocklist.
    std::vector<PacketEvent> events;
    Rng rng(3);
    SimTime t;
    for (int i = 0; i < 12; ++i) {
        t += SimTime::seconds(rng.uniform(3, 300));
        events.push_back(PacketEvent{t, 200, true});
    }
    const auto analyzer = analyzer_with("acrobat-updates.example.com", kServer, events);
    const AcrDomainIdentifier identifier;
    EXPECT_TRUE(identifier.acr_domains(analyzer, nullptr, SimTime::hours(1)).empty());
}

TEST(AcrDetectTest, OptOutDifferentialConfirmsAndRefutes) {
    const auto opted_in = analyzer_with("eu-acr3.alphonso.tv", kServer,
                                        periodic_events(SimTime::seconds(15), 30));
    // Control capture where the domain is gone: differential positive.
    const CaptureAnalyzer empty_control(kDevice);
    const AcrDomainIdentifier identifier;
    const auto find_acr = [](const std::vector<AcrFinding>& findings) -> const AcrFinding* {
        for (const auto& finding : findings) {
            if (finding.domain == "eu-acr3.alphonso.tv") return &finding;
        }
        return nullptr;
    };
    const auto findings =
        identifier.identify(opted_in, &empty_control, SimTime::minutes(10));
    const AcrFinding* confirmed = find_acr(findings);
    ASSERT_NE(confirmed, nullptr);
    ASSERT_TRUE(confirmed->optout_differential.has_value());
    EXPECT_TRUE(*confirmed->optout_differential);
    EXPECT_TRUE(confirmed->verdict);

    // Control capture where the domain persists: differential refutes.
    const auto still_there = analyzer_with("eu-acr3.alphonso.tv", kServer,
                                           periodic_events(SimTime::seconds(15), 30));
    const auto refuted_findings =
        identifier.identify(opted_in, &still_there, SimTime::minutes(10));
    const AcrFinding* refuted = find_acr(refuted_findings);
    ASSERT_NE(refuted, nullptr);
    EXPECT_FALSE(*refuted->optout_differential);
    EXPECT_FALSE(refuted->verdict);
}

// ------------------------------------------------------------------ report

TEST(ReportTest, TableRenderAlignsColumns) {
    Table table;
    table.title = "demo";
    table.header = {"Domain", "Idle", "Antenna"};
    table.rows = {{"eu-acrX.alphonso.tv", "264.7", "4759.7"}, {"x.com", "-", "1.0"}};
    const std::string text = table.render();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("eu-acrX.alphonso.tv"), std::string::npos);
    EXPECT_NE(text.find("4759.7"), std::string::npos);
    // All data lines have equal length (column alignment).
    const auto lines = split(trim(text), '\n');
    ASSERT_GE(lines.size(), 4U);
    EXPECT_EQ(lines[1].size(), lines[3].size() + 0U);  // rule vs row may differ; header == rows
}

TEST(ReportTest, TableCsv) {
    Table table;
    table.header = {"a", "b"};
    table.rows = {{"1", "2"}};
    EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(ReportTest, SparklinePeaksVisible) {
    BucketSeries series;
    series.bucket_width = SimTime::seconds(1);
    series.values.assign(200, 0.0);
    series.values[50] = 10.0;
    const std::string line = sparkline(series, 100);
    EXPECT_FALSE(line.empty());
    EXPECT_NE(line.find("█"), std::string::npos);  // the burst survives downsampling
}

TEST(ReportTest, SeriesCsvHasHeaderAndRows) {
    BucketSeries series;
    series.bucket_width = SimTime::seconds(1);
    series.values = {1.0, 2.0};
    const auto csv = series_to_csv(series);
    EXPECT_EQ(split(trim(csv), '\n').size(), 3U);
}

TEST(ReportTest, RenderFigureListsPanelsWithSharedAxis) {
    BucketSeries series;
    series.start = SimTime::minutes(5);
    series.bucket_width = SimTime::seconds(1);
    series.values.assign(60, 1.0);
    const std::string figure =
        render_figure("Figure X", {{"Linear", series}, {"Idle", series}});
    EXPECT_NE(figure.find("Figure X"), std::string::npos);
    EXPECT_NE(figure.find("Linear"), std::string::npos);
    EXPECT_NE(figure.find("Idle"), std::string::npos);
    EXPECT_NE(figure.find("+300s -> +360s"), std::string::npos);
}

TEST(ReportTest, SparklineOfEmptySeriesIsEmpty) {
    EXPECT_TRUE(sparkline(BucketSeries{}).empty());
    EXPECT_EQ(render_figure("empty", {}), "empty\n");
}

TEST(ReportTest, CumulativeCsv) {
    const auto csv = cumulative_to_csv({{SimTime::seconds(1), 100, 0.5}});
    EXPECT_NE(csv.find("time_s,bytes,fraction"), std::string::npos);
    EXPECT_NE(csv.find("1,100,0.5"), std::string::npos);
}

// ------------------------------------------------- streaming sharded engine

/// Field-by-field identity of two analyzers' observable state: totals, DNS
/// harvest, and every domain's counters, address order, timestamps, and
/// full event stream. This is the contract the sharded engine must meet.
void expect_same_analysis(const CaptureAnalyzer& serial, const CaptureAnalyzer& sharded) {
    EXPECT_EQ(serial.packets_total(), sharded.packets_total());
    EXPECT_EQ(serial.unparseable(), sharded.unparseable());
    EXPECT_EQ(serial.dns().responses_seen(), sharded.dns().responses_seen());
    EXPECT_EQ(serial.dns().mapping_count(), sharded.dns().mapping_count());
    const auto lhs_names = serial.dns().queried_names();
    const auto rhs_names = sharded.dns().queried_names();
    ASSERT_EQ(lhs_names.size(), rhs_names.size());
    for (std::size_t n = 0; n < lhs_names.size(); ++n) {
        EXPECT_EQ(lhs_names[n].name, rhs_names[n].name);
        EXPECT_EQ(lhs_names[n].first_seen, rhs_names[n].first_seen);
        EXPECT_EQ(lhs_names[n].addresses, rhs_names[n].addresses);
    }
    const auto lhs = serial.domains_by_bytes();
    const auto rhs = sharded.domains_by_bytes();
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t d = 0; d < lhs.size(); ++d) {
        SCOPED_TRACE(lhs[d]->domain);
        EXPECT_EQ(lhs[d]->domain, rhs[d]->domain);
        EXPECT_EQ(lhs[d]->addresses, rhs[d]->addresses);
        EXPECT_EQ(lhs[d]->packets, rhs[d]->packets);
        EXPECT_EQ(lhs[d]->bytes_up, rhs[d]->bytes_up);
        EXPECT_EQ(lhs[d]->bytes_down, rhs[d]->bytes_down);
        EXPECT_EQ(lhs[d]->first_seen, rhs[d]->first_seen);
        EXPECT_EQ(lhs[d]->last_seen, rhs[d]->last_seen);
        ASSERT_EQ(lhs[d]->events.size(), rhs[d]->events.size());
        for (std::size_t e = 0; e < lhs[d]->events.size(); ++e) {
            EXPECT_EQ(lhs[d]->events[e].timestamp, rhs[d]->events[e].timestamp);
            EXPECT_EQ(lhs[d]->events[e].frame_bytes, rhs[d]->events[e].frame_bytes);
            EXPECT_EQ(lhs[d]->events[e].device_to_server, rhs[d]->events[e].device_to_server);
        }
    }
}

/// A capture exercising the temporal DNS corners: traffic to a server
/// before its mapping is born (must stay unresolved), a response that
/// resolves its own source address (the serial path harvests DNS before
/// attributing, so that very packet is attributed by name), a second
/// address joining a domain late, and foreign traffic not involving the
/// device at all.
std::vector<net::Packet> temporal_capture() {
    const Ipv4Address late(23, 5, 0, 1);
    const Ipv4Address second(23, 5, 0, 2);
    std::vector<net::Packet> capture;
    capture.push_back(tcp_packet(kDevice, late, SimTime::millis(10), 500));  // pre-birth
    capture.push_back(tcp_packet(late, kDevice, SimTime::millis(20), 700));  // pre-birth
    capture.push_back(dns_response_packet("late.example.com", late, SimTime::millis(30)));
    capture.push_back(tcp_packet(kDevice, late, SimTime::millis(40), 900));  // resolved now
    // The resolver's own response packet resolves the resolver's address.
    capture.push_back(dns_response_packet("resolver.example.com", kResolver,
                                          SimTime::millis(50)));
    capture.push_back(dns_response_packet("late.example.com", second, SimTime::millis(60)));
    capture.push_back(tcp_packet(second, kDevice, SimTime::millis(70), 1100));
    capture.push_back(tcp_packet(Ipv4Address(10, 9, 9, 9), Ipv4Address(10, 9, 9, 10),
                                 SimTime::millis(80), 64));  // foreign: ignored
    capture.push_back(net::Packet{SimTime::millis(90), Bytes{0x01, 0x02}});  // unparseable
    for (int i = 0; i < 200; ++i) {
        const bool up = i % 3 != 0;
        const auto remote = i % 2 == 0 ? late : second;
        capture.push_back(up ? tcp_packet(kDevice, remote, SimTime::millis(100 + i), 100 + i)
                             : tcp_packet(remote, kDevice, SimTime::millis(100 + i), 100 + i));
    }
    return capture;
}

TEST(StreamingAnalyzerTest, MatchesSerialOnTemporalDnsCorners) {
    const auto capture = temporal_capture();
    CaptureAnalyzer serial(kDevice);
    serial.ingest_all(capture);

    // Pre-birth traffic stays unresolved even though the mapping exists by
    // the end of the capture — in both engines.
    ASSERT_NE(serial.find("unresolved:23.5.0.1"), nullptr);
    EXPECT_EQ(serial.find("unresolved:23.5.0.1")->packets, 2U);
    ASSERT_NE(serial.find("resolver.example.com"), nullptr);

    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{7}}) {
        SCOPED_TRACE(shards);
        StreamOptions options;
        options.shards = shards;
        expect_same_analysis(serial, analyze_packets(capture, kDevice, options));
    }
}

TEST(StreamingAnalyzerTest, ResultIndependentOfPoolAndShardCount) {
    const auto capture = temporal_capture();
    common::ThreadPool pool(3);
    StreamOptions pooled;
    pooled.pool = &pool;
    pooled.shards = 5;
    StreamOptions inline_one;
    inline_one.shards = 1;
    expect_same_analysis(analyze_packets(capture, kDevice, inline_one),
                         analyze_packets(capture, kDevice, pooled));
}

TEST(StreamingAnalyzerTest, GoldenCapturesAreByteIdenticalToSerialPath) {
    // The checked-in golden captures are real end-to-end simulator output;
    // replaying them through the streaming reader + sharded engine must
    // reproduce the serial analysis exactly, for any shard/worker count.
    // (The impaired sibling capture moved to an events-mode .tvcr golden;
    // test_replay.cpp and FaultGolden cover its streaming equivalence.)
    const std::string dir = TVACR_GOLDEN_DIR;
    common::ThreadPool pool(4);
    const char* name = "/samsung_uk_linear_2min_seed7.pcap";
    const auto packets = net::read_pcap_file(dir + name);
    ASSERT_TRUE(packets.ok());
    CaptureAnalyzer serial(kDevice);
    serial.ingest_all(packets.value());

    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{7}}) {
        SCOPED_TRACE(shards);
        StreamOptions options;
        options.shards = shards;
        options.pool = shards > 1 ? &pool : nullptr;
        auto streamed = analyze_pcap_stream(dir + name, kDevice, options);
        ASSERT_TRUE(streamed.ok());
        expect_same_analysis(serial, streamed.value());
    }
}

TEST(StreamingAnalyzerTest, PcapngFallbackPathMatchesSerial) {
    // tvacr_analyze's pcapng input takes a different route from plain pcap:
    // the capture is materialized by the pcapng decoder and then fed to the
    // sharded engine. That fallback path was previously untested. Round-trip
    // the temporal-corner capture through pcapng bytes and require the same
    // byte-identity the pcap path guarantees, at several shard counts.
    const auto capture = temporal_capture();
    const Bytes wire = net::to_pcapng_bytes(capture);
    const auto decoded = net::read_any_capture(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    ASSERT_EQ(decoded.value().size(), capture.size());

    CaptureAnalyzer serial(kDevice);
    serial.ingest_all(capture);
    common::ThreadPool pool(4);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{7}}) {
        SCOPED_TRACE(shards);
        StreamOptions options;
        options.shards = shards;
        options.pool = shards > 1 ? &pool : nullptr;
        expect_same_analysis(serial, analyze_packets(decoded.value(), kDevice, options));
    }
}

}  // namespace
}  // namespace tvacr::analysis
