// Tests for the audio fingerprinting pipeline: PCM synthesis, the Goertzel
// filter bank, landmark hashing, and audio-only content identification.
#include <gtest/gtest.h>

#include <cmath>

#include "fp/audio.hpp"
#include "fp/library.hpp"

namespace tvacr::fp {
namespace {

ContentStream broadcast_stream(std::uint64_t seed) {
    return ContentStream(seed, ContentDynamics::for_kind(ContentKind::kLiveBroadcast));
}

// --------------------------------------------------------------- synthesis

TEST(AudioSynthesisTest, ProducesRequestedDuration) {
    const auto stream = broadcast_stream(1);
    const PcmChunk pcm = synthesize_audio(stream, SimTime{}, SimTime::seconds(2));
    EXPECT_EQ(pcm.samples.size(), 2U * PcmChunk::kSampleRate);
    EXPECT_EQ(pcm.duration(), SimTime::seconds(2));
}

TEST(AudioSynthesisTest, DeterministicAndSeedSensitive) {
    const auto a = synthesize_audio(broadcast_stream(1), SimTime::seconds(3), SimTime::millis(500));
    const auto b = synthesize_audio(broadcast_stream(1), SimTime::seconds(3), SimTime::millis(500));
    const auto c = synthesize_audio(broadcast_stream(2), SimTime::seconds(3), SimTime::millis(500));
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_NE(a.samples, c.samples);
}

TEST(AudioSynthesisTest, BoundedAmplitude) {
    const auto pcm = synthesize_audio(broadcast_stream(5), SimTime{}, SimTime::seconds(1));
    for (const float sample : pcm.samples) {
        EXPECT_LE(std::abs(sample), 1.0F);
    }
}

// ---------------------------------------------------------------- goertzel

TEST(GoertzelTest, DetectsPureTone) {
    constexpr int kRate = 16000;
    std::vector<float> tone(1600);
    for (std::size_t i = 0; i < tone.size(); ++i) {
        tone[i] = std::sin(2.0F * 3.14159265F * 990.0F * static_cast<float>(i) / kRate);
    }
    const double at_tone = goertzel(tone, 990.0, kRate);
    const double off_tone = goertzel(tone, 2860.0, kRate);
    EXPECT_GT(at_tone, 100.0 * off_tone);
}

TEST(GoertzelTest, SilenceIsZeroEnergy) {
    const std::vector<float> silence(1600, 0.0F);
    EXPECT_DOUBLE_EQ(goertzel(silence, 990.0, 16000), 0.0);
}

TEST(AnalyzeWindowTest, NormalizedToStrongestBand) {
    const auto pcm = synthesize_audio(broadcast_stream(7), SimTime::seconds(1),
                                      SimTime::millis(100));
    const AudioWindow window = analyze_window(pcm.samples);
    float peak = 0.0F;
    for (const float e : window.band_energy) {
        EXPECT_GE(e, 0.0F);
        EXPECT_LE(e, 1.0F);
        peak = std::max(peak, e);
    }
    EXPECT_FLOAT_EQ(peak, 1.0F);
}

TEST(AnalyzeWindowTest, DifferentScenesDifferentSpectra) {
    const auto stream = broadcast_stream(9);
    // Find two distinct scenes.
    const std::size_t first = stream.scene_index_at(SimTime::seconds(1));
    SimTime later = SimTime::seconds(40);
    ASSERT_NE(stream.scene_index_at(later), first);
    const auto a = stream.audio_at(SimTime::seconds(1));
    const auto b = stream.audio_at(later);
    bool differs = false;
    for (int band = 0; band < AudioWindow::kBands; ++band) {
        if (std::abs(a.band_energy[band] - b.band_energy[band]) > 0.05F) differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(AnalyzeWindowTest, StableWithinScene) {
    const auto stream = broadcast_stream(11);
    const SimTime t = SimTime::millis(1200);
    const std::size_t scene = stream.scene_index_at(t);
    const SimTime later = t + SimTime::millis(40);
    if (stream.scene_index_at(later) == scene) {
        const auto a = stream.audio_at(t);
        const auto b = stream.audio_at(later);
        for (int band = 0; band < AudioWindow::kBands; ++band) {
            EXPECT_FLOAT_EQ(a.band_energy[band], b.band_energy[band]);
        }
    }
}

// --------------------------------------------------------------- landmarks

TEST(AudioFingerprintTest, LandmarksAreSparseOnsetPairs) {
    // 90 s of broadcast audio: scene changes every ~3.5 s, but only changes
    // of the *stable strongest band* become onsets, so landmarks are sparse.
    const auto pcm = synthesize_audio(broadcast_stream(13), SimTime{}, SimTime::seconds(90));
    const auto fingerprint = audio_fingerprint(pcm);
    EXPECT_GT(fingerprint.entries.size(), 6U);
    EXPECT_LT(fingerprint.entries.size(), 250U);  // sparse, not per-window
    for (const auto& entry : fingerprint.entries) {
        EXPECT_GE(entry.hash & 0xFF, 1U);            // inter-onset delta >= 1 window
        EXPECT_LT(entry.hash >> 17, 8U);             // band fields in range
    }
}

TEST(AudioFingerprintTest, PeakSequenceMatchesStreamAnalysis) {
    const auto stream = broadcast_stream(14);
    const auto direct = analyze_peaks(stream, SimTime::seconds(5), SimTime::seconds(12));
    const auto via_pcm = analyze_peaks(
        synthesize_audio(stream, SimTime::seconds(5), SimTime::seconds(12)));
    // Segmented analysis equals whole-chunk analysis (window-aligned).
    EXPECT_EQ(direct.strongest, via_pcm.strongest);
    EXPECT_EQ(direct.second, via_pcm.second);
}

TEST(AudioFingerprintTest, TooShortPcmYieldsNothing) {
    PcmChunk tiny;
    tiny.samples.assign(100, 0.1F);
    EXPECT_TRUE(audio_fingerprint(tiny).entries.empty());
}

TEST(AudioFingerprintTest, DeterministicForSameAudio) {
    const auto pcm = synthesize_audio(broadcast_stream(15), SimTime::seconds(2),
                                      SimTime::seconds(3));
    const auto a = audio_fingerprint(pcm);
    const auto b = audio_fingerprint(pcm);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].hash, b.entries[i].hash);
    }
}

// ---------------------------------------------------------- audio matching

struct AudioMatchFixture : ::testing::Test {
    std::vector<ContentInfo> catalog = builtin_catalog(808);
    AudioMatchServer server;

    void SetUp() override {
        // Index a few catalog entries (full indexing is exercised once;
        // keep the fixture fast).
        for (std::size_t i = 0; i < 4; ++i) {
            ContentInfo trimmed = catalog[i];
            trimmed.duration = SimTime::minutes(5);
            server.add_reference(trimmed);
        }
    }
};

TEST_F(AudioMatchFixture, IdentifiesContentAndOffsetFromAudioAlone) {
    const ContentStream stream(catalog[1].seed, catalog[1].dynamics);
    const SimTime true_offset = SimTime::seconds(90);
    const PcmChunk probe = synthesize_audio(stream, true_offset, SimTime::seconds(25));
    const auto match = server.match(audio_fingerprint(probe));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->content_id, catalog[1].id);
    const auto error = match->content_offset - true_offset;
    EXPECT_LE(std::abs(error.as_micros()), SimTime::seconds(10).as_micros());
    EXPECT_GE(match->hits, 4);
}

TEST_F(AudioMatchFixture, RejectsUnindexedContent) {
    const ContentStream stream(999999, ContentDynamics::for_kind(ContentKind::kLiveBroadcast));
    const PcmChunk probe = synthesize_audio(stream, SimTime::seconds(30), SimTime::seconds(25));
    EXPECT_FALSE(server.match(audio_fingerprint(probe)).has_value());
}

TEST_F(AudioMatchFixture, EmptyProbeDoesNotMatch) {
    EXPECT_FALSE(server.match(AudioFingerprint{}).has_value());
}

TEST_F(AudioMatchFixture, IndexIsPopulated) {
    EXPECT_GT(server.indexed_landmarks(), 200U);
}

}  // namespace
}  // namespace tvacr::fp
