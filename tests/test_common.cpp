// Unit and property tests for the common substrate: byte codecs, RNG
// determinism, statistics, strings, and simulated time.
#include <gtest/gtest.h>

#include <cmath>

#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/time.hpp"

namespace tvacr {
namespace {

// ---------------------------------------------------------------- ByteWriter

TEST(ByteWriter, WritesBigEndianIntegers) {
    ByteWriter w;
    w.u8(0xAB);
    w.u16(0x1234);
    w.u32(0xDEADBEEF);
    w.u64(0x0102030405060708ULL);
    const Bytes expected = {0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF,
                            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
    EXPECT_EQ(w.bytes(), expected);
}

TEST(ByteWriter, WritesLittleEndianIntegers) {
    ByteWriter w;
    w.u16le(0x1234);
    w.u32le(0xDEADBEEF);
    const Bytes expected = {0x34, 0x12, 0xEF, 0xBE, 0xAD, 0xDE};
    EXPECT_EQ(w.bytes(), expected);
}

TEST(ByteWriter, PatchOverwritesInPlace) {
    ByteWriter w;
    w.u16(0);
    w.u16(0xBEEF);
    w.patch_u16(0, 0xCAFE);
    const Bytes expected = {0xCA, 0xFE, 0xBE, 0xEF};
    EXPECT_EQ(w.bytes(), expected);
}

TEST(ByteWriter, FillAppendsRepeatedByte) {
    ByteWriter w;
    w.fill(3, 0x7F);
    EXPECT_EQ(w.size(), 3U);
    EXPECT_EQ(w.bytes()[2], 0x7F);
}

// ---------------------------------------------------------------- ByteReader

TEST(ByteReader, RoundTripsAllWidths) {
    ByteWriter w;
    w.u8(7);
    w.u16(300);
    w.u32(70000);
    w.u64(1ULL << 40);
    w.u16le(300);
    w.u32le(70000);
    ByteReader r(w.view());
    EXPECT_EQ(r.u8().value(), 7);
    EXPECT_EQ(r.u16().value(), 300);
    EXPECT_EQ(r.u32().value(), 70000U);
    EXPECT_EQ(r.u64().value(), 1ULL << 40);
    EXPECT_EQ(r.u16le().value(), 300);
    EXPECT_EQ(r.u32le().value(), 70000U);
    EXPECT_TRUE(r.at_end());
}

TEST(ByteReader, ReadPastEndFails) {
    const Bytes data = {1, 2};
    ByteReader r(data);
    EXPECT_TRUE(r.u16().ok());
    EXPECT_FALSE(r.u8().ok());
    EXPECT_FALSE(r.u16().ok());
    EXPECT_FALSE(r.raw(1).ok());
}

TEST(ByteReader, SkipAndSeek) {
    const Bytes data = {1, 2, 3, 4, 5};
    ByteReader r(data);
    EXPECT_TRUE(r.skip(2).ok());
    EXPECT_EQ(r.u8().value(), 3);
    EXPECT_TRUE(r.seek(0).ok());
    EXPECT_EQ(r.u8().value(), 1);
    EXPECT_FALSE(r.seek(6).ok());
    EXPECT_FALSE(r.skip(10).ok());
}

// --------------------------------------------------------------------- hex

TEST(Hex, RoundTrip) {
    const Bytes data = {0x00, 0x9F, 0xFF, 0x10};
    EXPECT_EQ(to_hex(data), "009fff10");
    EXPECT_EQ(from_hex("009fff10").value(), data);
    EXPECT_EQ(from_hex("009FFF10").value(), data);
}

TEST(Hex, RejectsBadInput) {
    EXPECT_FALSE(from_hex("abc").ok());   // odd length
    EXPECT_FALSE(from_hex("zz").ok());    // non-hex
}

// --------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniform(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NormalHasRoughlyRightMoments) {
    Rng rng(11);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(10.0, 2.0));
    EXPECT_NEAR(mean(samples), 10.0, 0.1);
    EXPECT_NEAR(stddev(samples), 2.0, 0.1);
}

TEST(Rng, ChanceRespectsProbability) {
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, DeriveSeedIsStableAndLabelSensitive) {
    EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
    EXPECT_NE(derive_seed(1, 2), derive_seed(1, 3));
    EXPECT_NE(derive_seed(1, 2), derive_seed(2, 2));
}

// ----------------------------------------------------------------- loads

TEST(ByteLoads, BigEndianHelpersMatchWireOrder) {
    const std::uint8_t buf[] = {0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF, 0x11};
    EXPECT_EQ(bytes::load_u16be(buf), 0x0123U);
    EXPECT_EQ(bytes::load_u32be(buf), 0x01234567U);
    EXPECT_EQ(bytes::load_u64be(buf), 0x0123456789ABCDEFULL);
    // Odd offset: the helpers must be alignment-agnostic.
    EXPECT_EQ(bytes::load_u16be(buf + 1), 0x2345U);
    EXPECT_EQ(bytes::load_u32be(buf + 1), 0x23456789U);
    EXPECT_EQ(bytes::load_u64be(buf + 1), 0x23456789ABCDEF11ULL);
}

TEST(ByteLoads, LittleEndianHelpersMatchPcapOrder) {
    const std::uint8_t buf[] = {0xD4, 0xC3, 0xB2, 0xA1, 0x5A};
    EXPECT_EQ(bytes::load_u16le(buf), 0xC3D4U);
    EXPECT_EQ(bytes::load_u32le(buf), 0xA1B2C3D4U);
    EXPECT_EQ(bytes::load_u16le(buf + 1), 0xB2C3U);
    EXPECT_EQ(bytes::load_u32le(buf + 1), 0x5AA1B2C3U);
}

// ----------------------------------------------------------------- Arena

TEST(Arena, BumpAllocatesWithinOneChunk) {
    common::Arena arena;
    const auto a = arena.make_array<std::uint64_t>(8);
    const auto b = arena.make_array<std::uint64_t>(8);
    ASSERT_EQ(a.size(), 8U);
    ASSERT_EQ(b.size(), 8U);
    // Distinct, non-overlapping storage.
    a[7] = 1;
    b[0] = 2;
    EXPECT_EQ(a[7], 1U);
    EXPECT_EQ(b[0], 2U);
    EXPECT_EQ(arena.bytes_allocated(), 2 * 8 * sizeof(std::uint64_t));
    EXPECT_EQ(arena.bytes_reserved(), common::Arena::kDefaultChunkBytes);
}

TEST(Arena, RespectsAlignment) {
    common::Arena arena;
    (void)arena.allocate(1, 1);  // misalign the bump pointer
    void* p = arena.allocate(8, 8);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0U);
    void* q = arena.allocate(3, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 64, 0U);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
    common::Arena arena(256);
    const auto big = arena.make_zeroed_array<std::uint8_t>(10'000);
    ASSERT_EQ(big.size(), 10'000U);
    EXPECT_EQ(big[9'999], 0U);
    EXPECT_GE(arena.bytes_reserved(), 10'000U);
    // Small allocations still succeed afterwards.
    const auto small = arena.make_array<std::uint32_t>(4);
    EXPECT_EQ(small.size(), 4U);
}

TEST(Arena, ResetRetainsCapacityAndReusesChunks) {
    common::Arena arena(256);
    for (int i = 0; i < 50; ++i) (void)arena.make_array<std::uint64_t>(16);
    const std::size_t reserved = arena.bytes_reserved();
    EXPECT_GT(arena.bytes_allocated(), 0U);
    arena.reset();
    EXPECT_EQ(arena.bytes_allocated(), 0U);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    // A second identical population must not grow the reservation.
    for (int i = 0; i < 50; ++i) (void)arena.make_array<std::uint64_t>(16);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, MakeConstructsInPlace) {
    struct Route {
        std::uint32_t address;
        std::uint16_t hits;
    };
    common::Arena arena;
    const Route* r = arena.make<Route>(Route{0xC0A80001U, 7});
    EXPECT_EQ(r->address, 0xC0A80001U);
    EXPECT_EQ(r->hits, 7U);
}

// ------------------------------------------------------------------- stats

TEST(Stats, MeanVarianceStddev) {
    const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(variance(xs), 4.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptyInputsAreZero) {
    const std::vector<double> none;
    EXPECT_EQ(mean(none), 0.0);
    EXPECT_EQ(variance(none), 0.0);
    EXPECT_EQ(percentile(std::vector<double>{}, 0.5), 0.0);
    EXPECT_EQ(percentile(std::span<double>{}, 0.5), 0.0);
    EXPECT_EQ(coefficient_of_variation(none), 0.0);
}

TEST(Stats, PercentileInterpolates) {
    const std::vector<double> xs = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Stats, PercentileSpanOverloadMatchesVectorOverload) {
    // The nth_element-based span overload must agree with the sorting
    // overload at every rank, including duplicates and unsorted input.
    const std::vector<double> xs = {9, 1, 4, 4, 7, 2, 8, 3, 4, 6, 5, 0};
    for (int i = 0; i <= 20; ++i) {
        const double q = static_cast<double>(i) / 20.0;
        std::vector<double> scratch = xs;
        EXPECT_DOUBLE_EQ(percentile(std::span<double>(scratch), q), percentile(xs, q))
            << "q=" << q;
    }
}

TEST(Stats, PercentileLeavesCallerBufferIntact) {
    // Regression: the span overload used to run nth_element directly on the
    // caller's storage, so a p50 query reordered the samples and skewed any
    // p95 taken from the same buffer afterwards (bench_analyze does exactly
    // that). Both quantiles must come out right from one untouched buffer.
    const std::vector<double> expected_order = {40, 10, 90, 20, 80, 30, 70, 50, 60, 100};
    std::vector<double> samples = expected_order;
    const std::span<const double> span(samples);
    EXPECT_DOUBLE_EQ(percentile(span, 0.5), 55.0);
    EXPECT_DOUBLE_EQ(percentile(span, 0.95), 95.5);
    EXPECT_EQ(samples, expected_order);
    // Same answers as sorting the whole thing (vector overload).
    EXPECT_DOUBLE_EQ(percentile(expected_order, 0.5), 55.0);
    EXPECT_DOUBLE_EQ(percentile(expected_order, 0.95), 95.5);
}

TEST(Stats, PercentileSpanSingleElementAndClamping) {
    std::vector<double> one = {42.0};
    EXPECT_DOUBLE_EQ(percentile(std::span<double>(one), 0.5), 42.0);
    std::vector<double> xs = {3, 1, 2};
    EXPECT_DOUBLE_EQ(percentile(std::span<double>(xs), -0.5), 1.0);  // clamps to q=0
    EXPECT_DOUBLE_EQ(percentile(std::span<double>(xs), 1.5), 3.0);   // clamps to q=1
}

TEST(Stats, AutocorrelationDetectsPeriodicSignal) {
    // Period-10 impulse train: lag 10 correlates strongly, lag 7 does not.
    std::vector<double> xs(200, 0.0);
    for (std::size_t i = 0; i < xs.size(); i += 10) xs[i] = 1.0;
    EXPECT_GT(autocorrelation(xs, 10), 0.8);
    EXPECT_LT(autocorrelation(xs, 7), 0.2);
}

TEST(Stats, DominantPeriodFindsImpulseTrain) {
    std::vector<double> xs(300, 0.0);
    for (std::size_t i = 0; i < xs.size(); i += 15) xs[i] = 1.0;
    const auto period = dominant_period(xs, 2, 50, 0.5);
    ASSERT_TRUE(period.has_value());
    EXPECT_EQ(period->lag_samples, 15U);
}

TEST(Stats, DominantPeriodRejectsNoise) {
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform01());
    EXPECT_FALSE(dominant_period(xs, 2, 50, 0.6).has_value());
}

TEST(Stats, EmpiricalCdfIsMonotonic) {
    const auto cdf = empirical_cdf({3, 1, 2});
    ASSERT_EQ(cdf.size(), 3U);
    EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
    EXPECT_DOUBLE_EQ(cdf[2].x, 3.0);
    EXPECT_DOUBLE_EQ(cdf[2].p, 1.0);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_LE(cdf[i - 1].x, cdf[i].x);
        EXPECT_LT(cdf[i - 1].p, cdf[i].p);
    }
}

// ------------------------------------------------------------------ strings

TEST(Strings, SplitAndJoin) {
    const auto parts = split("a.b..c", '.');
    ASSERT_EQ(parts.size(), 4U);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "."), "a.b..c");
}

TEST(Strings, CaseHelpers) {
    EXPECT_EQ(to_lower("AcR-EU"), "acr-eu");
    EXPECT_TRUE(contains_ci("eu-ACR7.alphonso.tv", "acr"));
    EXPECT_FALSE(contains_ci("samsungads.com", "acr"));
    EXPECT_TRUE(starts_with("acr0.samsung", "acr"));
    EXPECT_TRUE(ends_with("log-config.samsungacr.com", ".com"));
}

TEST(Strings, TrimStripsWhitespace) {
    EXPECT_EQ(trim("  x y \n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, FormatKbMatchesPaperStyle) {
    EXPECT_EQ(format_kb(4759.71), "4759.7");
    EXPECT_EQ(format_kb(0.0), "-");  // paper renders zero traffic as '-'
    EXPECT_EQ(format_kb(9.54), "9.5");
}

TEST(Strings, Padding) {
    EXPECT_EQ(pad_right("ab", 4), "ab  ");
    EXPECT_EQ(pad_left("ab", 4), "  ab");
    EXPECT_EQ(pad_left("abcdef", 4), "abcdef");  // never truncates
}

// -------------------------------------------------------------------- time

TEST(SimTimeTest, ConversionsAreExact) {
    EXPECT_EQ(SimTime::seconds(2).as_micros(), 2'000'000);
    EXPECT_EQ(SimTime::millis(1500).as_millis(), 1500);
    EXPECT_EQ(SimTime::minutes(2).as_micros(), 120'000'000);
    EXPECT_EQ(SimTime::hours(1).as_micros(), 3'600'000'000LL);
    EXPECT_DOUBLE_EQ(SimTime::millis(2500).as_seconds(), 2.5);
}

TEST(SimTimeTest, Arithmetic) {
    const auto t = SimTime::seconds(10) + SimTime::millis(500) - SimTime::millis(1500);
    EXPECT_EQ(t.as_millis(), 9000);
    EXPECT_EQ((SimTime::seconds(1) * 15).as_micros(), 15'000'000);
    EXPECT_EQ(SimTime::minutes(1) / SimTime::seconds(15), 4);
}

TEST(SimTimeTest, Ordering) {
    EXPECT_LT(SimTime::millis(999), SimTime::seconds(1));
    EXPECT_EQ(SimTime::seconds(60), SimTime::minutes(1));
}

TEST(SimTimeTest, FormatMmSs) {
    EXPECT_EQ(format_mmss(SimTime::millis(0)), "00:00.000");
    EXPECT_EQ(format_mmss(SimTime::seconds(75) + SimTime::millis(42)), "01:15.042");
}

}  // namespace
}  // namespace tvacr
