// Adversarial resilience tests for the tvacr::fault subsystem: the FaultSpec
// parser, the deterministic ImpairmentModel, TCP/DNS survival under seeded
// loss/reorder/duplication sweeps, ACR hold-back across link outages, and the
// impaired golden .tvcr capture. The unifying property: an impaired link
// changes *when and how often* bytes cross the wire, never *which*
// application bytes arrive — and every impaired run replays byte-identically
// from (spec, seed).
//
// Regenerate the impaired golden capture with:
//
//   TVACR_UPDATE_GOLDEN=1 ./build/tests/test_fault --gtest_filter='FaultGolden.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"
#include "fault/impairment.hpp"
#include "fault/spec.hpp"
#include "net/pcap.hpp"
#include "replay/replay.hpp"
#include "sim/access_point.hpp"
#include "sim/cloud.hpp"
#include "sim/dns_client.hpp"
#include "sim/station.hpp"
#include "sim/tcp.hpp"

namespace tvacr::fault {
namespace {

using net::Ipv4Address;

// ------------------------------------------------------------------- parser

TEST(FaultSpecTest, EmptyAndNoneParseToDisabledSpec) {
    for (const char* text : {"", "none", "  none  "}) {
        const auto parsed = parse_fault_spec(text);
        ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
        EXPECT_FALSE(parsed.spec->enabled()) << text;
        EXPECT_EQ(parsed.spec->to_string(), "none");
    }
}

TEST(FaultSpecTest, CanonicalKeywordMatchesCanonicalSpec) {
    const auto parsed = parse_fault_spec("canonical");
    ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
    EXPECT_EQ(*parsed.spec, canonical_fault_spec());
    EXPECT_TRUE(parsed.spec->enabled());
}

TEST(FaultSpecTest, FullSpecRoundTripsThroughToString) {
    FaultSpec spec;
    spec.loss = 0.05;
    spec.duplicate = 0.01;
    spec.reorder = 0.02;
    spec.reorder_delay = SimTime::millis(40);
    spec.jitter = SimTime::millis(3);
    spec.bandwidth_kbps = 256;
    spec.outages.push_back({SimTime::seconds(60), SimTime::seconds(75)});
    spec.dns_outages.push_back({SimTime::seconds(30), SimTime::seconds(38)});
    spec.drop_uplink_frames = {0, 3};
    spec.drop_downlink_frames = {1};

    const std::string rendered = spec.to_string();
    const auto reparsed = parse_fault_spec(rendered);
    ASSERT_TRUE(reparsed.spec.has_value()) << reparsed.error;
    EXPECT_EQ(*reparsed.spec, spec);
    // Canonical rendering is a fixed point: render(parse(render(s))) ==
    // render(s), so specs can be compared and logged as strings.
    EXPECT_EQ(reparsed.spec->to_string(), rendered);
}

TEST(FaultSpecTest, ParsesInlineSyntaxWithWhitespaceAndRepeatedWindows) {
    const auto parsed =
        parse_fault_spec(" loss=0.1 , outage=10s+5s , outage=30s+1s , drop_up=0;2;4 ");
    ASSERT_TRUE(parsed.spec.has_value()) << parsed.error;
    EXPECT_DOUBLE_EQ(parsed.spec->loss, 0.1);
    ASSERT_EQ(parsed.spec->outages.size(), 2U);
    EXPECT_EQ(parsed.spec->outages[0], (TimeWindow{SimTime::seconds(10), SimTime::seconds(15)}));
    EXPECT_EQ(parsed.spec->outages[1], (TimeWindow{SimTime::seconds(30), SimTime::seconds(31)}));
    EXPECT_EQ(parsed.spec->drop_uplink_frames, (std::vector<std::uint64_t>{0, 2, 4}));
}

TEST(FaultSpecTest, RejectsMalformedInput) {
    for (const char* text : {
             "bogus_key=1",        // unknown key
             "loss",               // no '='
             "loss=abc",           // not a number
             "loss=1.5",           // probability out of range
             "reorder_delay=10x",  // bad duration unit
             "outage=60s",         // window missing '+duration'
             "outage=60s+0s",      // empty window
             "drop_up=1;x",        // non-numeric index
         }) {
        const auto parsed = parse_fault_spec(text);
        EXPECT_FALSE(parsed.spec.has_value()) << text;
        EXPECT_FALSE(parsed.error.empty()) << text;
    }
}

// --------------------------------------------------------- impairment model

TEST(ImpairmentModelTest, VerdictSequencesReplayExactlyFromSeed) {
    FaultSpec spec;
    spec.loss = 0.2;
    spec.duplicate = 0.1;
    spec.reorder = 0.1;
    spec.jitter = SimTime::millis(2);

    ImpairmentModel a(spec, /*seed=*/7, /*link_id=*/1);
    ImpairmentModel b(spec, /*seed=*/7, /*link_id=*/1);
    ImpairmentModel other_link(spec, /*seed=*/7, /*link_id=*/2);
    bool diverged = false;
    for (int i = 0; i < 500; ++i) {
        const SimTime now = SimTime::millis(i);
        const auto va = a.on_frame(Direction::kUplink, now, 1200);
        const auto vb = b.on_frame(Direction::kUplink, now, 1200);
        const auto vo = other_link.on_frame(Direction::kUplink, now, 1200);
        EXPECT_EQ(va.drop, vb.drop) << i;
        EXPECT_EQ(va.duplicate, vb.duplicate) << i;
        EXPECT_EQ(va.reordered, vb.reordered) << i;
        EXPECT_EQ(va.extra_delay, vb.extra_delay) << i;
        if (va.drop != vo.drop || va.extra_delay != vo.extra_delay) diverged = true;
    }
    EXPECT_EQ(a.dropped(), b.dropped());
    EXPECT_EQ(a.duplicated(), b.duplicated());
    EXPECT_EQ(a.reordered(), b.reordered());
    // Distinct link ids get independent substreams from the same seed.
    EXPECT_TRUE(diverged);
}

TEST(ImpairmentModelTest, OutageWindowDropsEveryFrameAndReportsLinkDown) {
    FaultSpec spec;
    spec.outages.push_back({SimTime::seconds(10), SimTime::seconds(20)});
    ImpairmentModel model(spec, 1, 1);

    EXPECT_TRUE(model.link_up(SimTime::seconds(9)));
    EXPECT_FALSE(model.link_up(SimTime::seconds(10)));  // window is half-open
    EXPECT_FALSE(model.link_up(SimTime::seconds(19)));
    EXPECT_TRUE(model.link_up(SimTime::seconds(20)));

    EXPECT_TRUE(model.on_frame(Direction::kUplink, SimTime::seconds(15), 100).drop);
    EXPECT_TRUE(model.on_frame(Direction::kDownlink, SimTime::seconds(15), 100).drop);
    EXPECT_FALSE(model.on_frame(Direction::kUplink, SimTime::seconds(25), 100).drop);
    EXPECT_EQ(model.dropped(), 2U);
    EXPECT_EQ(model.outage_dropped(), 2U);
}

TEST(ImpairmentModelTest, DnsOutageWindowsAreIndependentOfLinkOutages) {
    FaultSpec spec;
    spec.dns_outages.push_back({SimTime::seconds(30), SimTime::seconds(38)});
    ImpairmentModel model(spec, 1, 1);
    EXPECT_FALSE(model.dns_down(SimTime::seconds(29)));
    EXPECT_TRUE(model.dns_down(SimTime::seconds(30)));
    EXPECT_TRUE(model.dns_down(SimTime::seconds(37)));
    EXPECT_FALSE(model.dns_down(SimTime::seconds(38)));
    // The data link stays up throughout a DNS-only failure.
    EXPECT_TRUE(model.link_up(SimTime::seconds(33)));
    EXPECT_FALSE(model.on_frame(Direction::kUplink, SimTime::seconds(33), 100).drop);
}

TEST(ImpairmentModelTest, ScriptedDropsHitExactFrameIndicesPerDirection) {
    FaultSpec spec;
    spec.drop_uplink_frames = {0, 2};
    spec.drop_downlink_frames = {1};
    ImpairmentModel model(spec, 1, 1);
    const SimTime now;
    EXPECT_TRUE(model.on_frame(Direction::kUplink, now, 100).drop);    // up #0
    EXPECT_FALSE(model.on_frame(Direction::kUplink, now, 100).drop);   // up #1
    EXPECT_TRUE(model.on_frame(Direction::kUplink, now, 100).drop);    // up #2
    EXPECT_FALSE(model.on_frame(Direction::kUplink, now, 100).drop);   // up #3
    EXPECT_FALSE(model.on_frame(Direction::kDownlink, now, 100).drop); // down #0
    EXPECT_TRUE(model.on_frame(Direction::kDownlink, now, 100).drop);  // down #1
    EXPECT_EQ(model.dropped(), 3U);
    EXPECT_EQ(model.outage_dropped(), 0U);
}

TEST(ImpairmentModelTest, BandwidthCapQueuesBackToBackFrames) {
    FaultSpec spec;
    spec.bandwidth_kbps = 1000;  // 1 Mbit/s: a 1250-byte frame serializes in 10ms
    ImpairmentModel model(spec, 1, 1);
    const auto first = model.on_frame(Direction::kUplink, SimTime{}, 1250);
    const auto second = model.on_frame(Direction::kUplink, SimTime{}, 1250);
    EXPECT_EQ(first.extra_delay, SimTime::millis(10));
    EXPECT_EQ(second.extra_delay, SimTime::millis(20));  // queued behind the first
    // After the queue drains the link is idle again.
    const auto later = model.on_frame(Direction::kUplink, SimTime::seconds(1), 1250);
    EXPECT_EQ(later.extra_delay, SimTime::millis(10));
}

// ----------------------------------------------------- raw-socket testbed

struct Bed {
    sim::Simulator sim;
    sim::AccessPoint ap{sim, net::MacAddress::local(0xA9), Ipv4Address(192, 168, 4, 1),
                        sim::LatencyModel{SimTime::millis(2), SimTime::micros(300)}, 101};
    sim::Cloud cloud{sim, 202};
    sim::Station tv{sim, "tv", net::MacAddress::local(0x71), Ipv4Address(192, 168, 4, 23)};
    std::vector<net::Packet> capture;

    Bed() {
        ap.set_cloud(cloud);
        tv.attach(ap);
        cloud.enable_dns(Ipv4Address(9, 9, 9, 9));
        cloud.set_default_route(sim::LatencyModel{SimTime::millis(12), SimTime::millis(2)});
        ap.set_tap([this](const net::Packet& packet) { capture.push_back(packet); });
    }
};

Bytes patterned(std::size_t size, std::uint8_t stride) {
    Bytes data(size);
    for (std::size_t i = 0; i < size; ++i) {
        data[i] = static_cast<std::uint8_t>(i * stride);
    }
    return data;
}

/// Runs one 30k-up / 40k-down patterned exchange through an impaired Wi-Fi
/// link and asserts the delivery contract: byte-exact streams in both
/// directions, or (when `allow_connect_failure` and the link is hostile
/// enough to exhaust the SYN retry budget) a clean give-up with nothing
/// partially delivered. Returns the total retransmission count.
std::uint64_t run_patterned_exchange(const FaultSpec& spec, std::uint64_t seed,
                                     bool allow_connect_failure = false) {
    Bed bed;
    ImpairmentModel model(spec, seed, /*link_id=*/1);
    model.bind(bed.sim.obs().metrics);
    bed.ap.set_impairment(&model);

    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    const Bytes request = patterned(30000, 3);
    const Bytes expected_response = patterned(40000, 11);
    Bytes seen_request;
    sim::TcpConnection conn(bed.sim, bed.tv, bed.cloud, server, [&](BytesView in) {
        seen_request.assign(in.begin(), in.end());
        return expected_response;
    });
    Bytes response;
    bool established = false;
    conn.connect([&]() {
        established = true;
        conn.exchange(request, [&](Bytes r) { response = std::move(r); });
    });
    bed.sim.run_all();

    if (!established && allow_connect_failure) {
        // The SYN retry budget ran out on a catastrophic link. The contract
        // is a *clean* failure: the connection closed, retries were really
        // attempted, and no partial application data leaked through.
        EXPECT_TRUE(conn.closed());
        EXPECT_GT(conn.control_retransmits(), 0U);
        EXPECT_TRUE(seen_request.empty());
        EXPECT_TRUE(response.empty());
        return conn.retransmitted_segments() + conn.control_retransmits();
    }
    EXPECT_TRUE(established) << "handshake failed (loss=" << spec.loss << ")";
    EXPECT_EQ(seen_request, request) << "uplink stream corrupted (loss=" << spec.loss << ")";
    EXPECT_EQ(response, expected_response)
        << "downlink stream corrupted (loss=" << spec.loss << ")";
    // Light loss can leave a short exchange untouched by chance; only heavier
    // rates are guaranteed to actually damage a ~100-frame transfer.
    if (spec.loss >= 0.05) {
        EXPECT_GT(bed.sim.obs().metrics.counter_value("link.dropped"), 0U);
    }
    return conn.retransmitted_segments() + conn.control_retransmits();
}

TEST(FaultTcpTest, SeededLossSweepDeliversExactByteStreams) {
    // The acceptance sweep: frame loss from light to catastrophic. At every
    // rate the reassembled application byte stream is identical to the
    // clean-link run; past a few percent the repair machinery must have
    // actually engaged.
    for (const double loss : {0.01, 0.05, 0.20, 0.50}) {
        SCOPED_TRACE(loss);
        FaultSpec spec;
        spec.loss = loss;
        const std::uint64_t retransmits = run_patterned_exchange(spec, /*seed=*/2024);
        if (loss >= 0.05) {
            EXPECT_GT(retransmits, 0U);
        }
    }
}

TEST(FaultTcpTest, ReorderWindowSweepStillDeliversInOrder) {
    for (const auto& [probability, delay] :
         {std::pair{0.1, SimTime::millis(5)}, std::pair{0.3, SimTime::millis(30)}}) {
        SCOPED_TRACE(probability);
        FaultSpec spec;
        spec.reorder = probability;
        spec.reorder_delay = delay;
        run_patterned_exchange(spec, /*seed=*/7);
    }
}

TEST(FaultTcpTest, CombinedLossReorderDuplicationJitterIsSurvivable) {
    FaultSpec spec;
    spec.loss = 0.1;
    spec.duplicate = 0.1;
    spec.reorder = 0.1;
    spec.reorder_delay = SimTime::millis(20);
    spec.jitter = SimTime::millis(3);
    const std::uint64_t retransmits = run_patterned_exchange(spec, /*seed=*/42);
    EXPECT_GT(retransmits, 0U);
}

TEST(FaultTcpTest, ImpairedTransfersReplayByteIdentically) {
    // Same (spec, seed) twice on fresh testbeds: the captures — including
    // every retransmission, duplicate, and reordered straggler — match byte
    // for byte. This is the substream determinism contract at the pcap level.
    FaultSpec spec;
    spec.loss = 0.15;
    spec.duplicate = 0.05;
    spec.reorder = 0.05;
    spec.jitter = SimTime::millis(2);

    const auto run_once = [&spec]() {
        Bed bed;
        ImpairmentModel model(spec, /*seed=*/99, /*link_id=*/1);
        bed.ap.set_impairment(&model);
        const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
        sim::TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                                [](BytesView) { return patterned(20000, 5); });
        conn.connect([&]() { conn.exchange(patterned(10000, 3), [](Bytes) {}); });
        bed.sim.run_all();
        return net::to_pcap_bytes(bed.capture);
    };
    EXPECT_EQ(run_once(), run_once());
}

// ----------------------------------------------------------------- dns

TEST(FaultDnsTest, FailoverToSecondaryResolverDuringPrimaryOutage) {
    // The primary resolver is silenced for the whole query window; a
    // configured secondary keeps answering. The stub resolver must time out
    // on the primary, fail over, and still resolve the name.
    Bed bed;
    FaultSpec spec;
    spec.dns_outages.push_back({SimTime{}, SimTime::seconds(60)});
    ImpairmentModel model(spec, 1, 1);
    bed.cloud.set_impairment(&model);

    const Ipv4Address secondary(149, 112, 112, 112);
    bed.cloud.zone().add_a("acr-eu-prd.samsungcloud.tv", Ipv4Address(20, 30, 40, 50));
    bed.cloud.add_dns_server(secondary);

    sim::DnsClient::Config config;
    config.fallback_resolvers.push_back(secondary);
    sim::DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55, config);
    std::optional<Ipv4Address> answer;
    int callbacks = 0;
    resolver.resolve("acr-eu-prd.samsungcloud.tv", [&](std::optional<Ipv4Address> address) {
        ++callbacks;
        answer = address;
    });
    bed.sim.run_all();

    EXPECT_EQ(callbacks, 1);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(*answer, Ipv4Address(20, 30, 40, 50));
    EXPECT_GT(resolver.retries(), 0U);
    EXPECT_GT(resolver.failovers(), 0U);
    const auto& metrics = bed.sim.obs().metrics;
    EXPECT_EQ(metrics.counter_value("dns.failovers"), resolver.failovers());
    EXPECT_GT(metrics.counter_value("dns.timeouts"), 0U);
}

TEST(FaultDnsTest, PrimaryOnlyOutageFailsDeterministically) {
    // No fallback configured: resolution must fail after the bounded retry
    // budget, exactly once, at a sim time that replays identically.
    const auto run_once = [](SimTime& finished_at) {
        Bed bed;
        FaultSpec spec;
        spec.dns_outages.push_back({SimTime{}, SimTime::minutes(5)});
        ImpairmentModel model(spec, 1, 1);
        bed.cloud.set_impairment(&model);
        bed.cloud.zone().add_a("example.com", Ipv4Address(1, 1, 1, 1));
        sim::DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
        int callbacks = 0;
        bool answered = true;
        resolver.resolve("example.com", [&](std::optional<Ipv4Address> address) {
            ++callbacks;
            answered = address.has_value();
        });
        bed.sim.run_all();
        finished_at = bed.sim.now();
        EXPECT_EQ(callbacks, 1);
        EXPECT_FALSE(answered);
        EXPECT_EQ(bed.sim.obs().metrics.counter_value("dns.failures"), 1U);
        EXPECT_EQ(bed.sim.obs().metrics.counter_value("dns.answers"), 0U);
    };
    SimTime first;
    SimTime second;
    run_once(first);
    run_once(second);
    EXPECT_EQ(first, second);
    EXPECT_GT(first, SimTime{});
}

TEST(FaultDnsTest, ResolutionRecoversAfterTheDnsWindowCloses) {
    // The window ends between retries: the final attempt reaches the healed
    // primary and succeeds with no failover needed.
    Bed bed;
    FaultSpec spec;
    spec.dns_outages.push_back({SimTime{}, SimTime::seconds(4)});  // retries are 3s apart
    ImpairmentModel model(spec, 1, 1);
    bed.cloud.set_impairment(&model);
    bed.cloud.zone().add_a("example.com", Ipv4Address(1, 1, 1, 1));
    sim::DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
    std::optional<Ipv4Address> answer;
    resolver.resolve("example.com",
                     [&](std::optional<Ipv4Address> address) { answer = address; });
    bed.sim.run_all();
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(*answer, Ipv4Address(1, 1, 1, 1));
    EXPECT_GT(resolver.retries(), 0U);
    EXPECT_EQ(resolver.failovers(), 0U);
}

// ----------------------------------------------------------- experiments

// LG for the behavioural assertions: its 15-second upload cadence gives a
// two-minute run several ticks on both sides of the canonical 60s–75s outage
// (Samsung's 60s cadence would leave zero completed uploads). The golden test
// below keeps Samsung to mirror test_regression's flagship cell.
core::ExperimentSpec impaired_spec(FaultSpec faults, tv::Brand brand = tv::Brand::kLg) {
    core::ExperimentSpec spec;
    spec.brand = brand;
    spec.country = tv::Country::kUk;
    spec.scenario = tv::Scenario::kLinear;
    spec.phase = tv::Phase::kLInOIn;
    spec.duration = SimTime::minutes(2);
    spec.seed = 7;
    spec.faults = std::move(faults);
    return spec;
}

TEST(FaultExperimentTest, CanonicalFaultsShowDropsRetransmitsAndRecovery) {
    // The headline acceptance run: under the canonical impaired scenario the
    // pcap records real damage (drops, an outage, retransmissions) yet the
    // ACR pipeline still captures, uploads, and gets recognized.
    const auto result = core::ExperimentRunner::run(impaired_spec(canonical_fault_spec()));
    const auto& metrics = result.metrics;
    EXPECT_GT(metrics.counter_value("link.dropped"), 0U);
    EXPECT_GT(metrics.counter_value("link.outage_dropped"), 0U);
    EXPECT_GT(metrics.counter_value("tcp.retransmits") +
                  metrics.counter_value("tcp.ctrl_retransmits"),
              0U);
    EXPECT_GT(result.batches_uploaded, 0U);
    EXPECT_GT(result.backend_batches, 0U);
    EXPECT_GT(result.backend_matches, 0U);
}

TEST(FaultExperimentTest, LinkOutageQueuesFingerprintsAndFlushesOnReconnect) {
    // A mid-run outage longer than the upload period: upload ticks inside it
    // must hold fingerprints locally (observable via acr.queued_fingerprints)
    // and the backlog must reach the backend after the link returns.
    FaultSpec faults;
    faults.outages.push_back({SimTime::seconds(40), SimTime::seconds(70)});
    const auto impaired = core::ExperimentRunner::run(impaired_spec(faults));
    const auto clean = core::ExperimentRunner::run(impaired_spec(FaultSpec{}));

    EXPECT_GT(impaired.metrics.counter_value("acr.queued_fingerprints"), 0U);
    EXPECT_EQ(clean.metrics.counter_value("acr.queued_fingerprints"), 0U);
    // Outage ticks skipped uploads, so fewer batches — but nothing was lost:
    // the captures all reached the backend inside the flush batches.
    EXPECT_LT(impaired.batches_uploaded, clean.batches_uploaded);
    EXPECT_GT(impaired.backend_batches, 0U);
    EXPECT_GT(impaired.backend_matches, 0U);
}

TEST(FaultExperimentTest, LossChangesTheWireButNotTheApplicationOutcome) {
    // Same seed, 5% frame loss vs clean: the pcaps differ (retransmissions
    // are visible on the wire) while the application-level outcome — batches
    // accepted and recognized by the backend — is identical.
    FaultSpec faults;
    faults.loss = 0.05;
    const auto impaired = core::ExperimentRunner::run(impaired_spec(faults));
    const auto clean = core::ExperimentRunner::run(impaired_spec(FaultSpec{}));

    EXPECT_NE(net::to_pcap_bytes(impaired.capture), net::to_pcap_bytes(clean.capture));
    EXPECT_GT(impaired.metrics.counter_value("link.dropped"), 0U);
    EXPECT_EQ(impaired.batches_uploaded, clean.batches_uploaded);
    EXPECT_EQ(impaired.backend_batches, clean.backend_batches);
    EXPECT_EQ(impaired.backend_matches, clean.backend_matches);
}

TEST(FaultExperimentTest, ImpairedExperimentsReplayByteIdentically) {
    const auto first = core::ExperimentRunner::run(impaired_spec(canonical_fault_spec()));
    const auto second = core::ExperimentRunner::run(impaired_spec(canonical_fault_spec()));
    EXPECT_EQ(net::to_pcap_bytes(first.capture), net::to_pcap_bytes(second.capture));
    EXPECT_EQ(first.metrics.to_json(), second.metrics.to_json());
    EXPECT_EQ(first.backend_matches, second.backend_matches);
}

// ---------------------------------------------------------------- golden

#ifndef TVACR_GOLDEN_DIR
#define TVACR_GOLDEN_DIR "tests/golden"
#endif

std::string read_file(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    std::ostringstream content;
    content << file.rdbuf();
    return content.str();
}

TEST(FaultGolden, CanonicalImpairedTvcrMatchesCheckedInCapture) {
    // The impaired sibling of GoldenTrace.PcapBytesMatchCheckedInCapture:
    // same flagship cell, canonical FaultSpec. Any change to the impairment
    // draw order, the RNG substream keying, the repair paths — or the .tvcr
    // encoder itself — shows up here as a byte diff. The fixture is stored
    // as an events-mode .tvcr (an order of magnitude smaller than the pcap
    // it replaced; the raw fingerprint payloads it drops are pseudorandom
    // and incompressible, so the pcap could never shrink).
    const auto result =
        core::ExperimentRunner::run(impaired_spec(canonical_fault_spec(), tv::Brand::kSamsung));
    const Bytes tvcr = replay::to_tvcr_bytes(result.capture);
    const std::string measured(tvcr.begin(), tvcr.end());
    const std::string path =
        std::string(TVACR_GOLDEN_DIR) + "/samsung_uk_linear_2min_seed7_canonical_faults.tvcr";
    if (std::getenv("TVACR_UPDATE_GOLDEN") != nullptr) {
        std::ofstream file(path, std::ios::binary);
        file << measured;
        GTEST_SKIP() << "regenerated " << path;
    }
    const std::string golden = read_file(path);
    ASSERT_FALSE(golden.empty()) << "missing golden file " << path
                                 << " — regenerate with TVACR_UPDATE_GOLDEN=1";
    ASSERT_EQ(measured.size(), golden.size());
    EXPECT_TRUE(measured == golden) << "impaired tvcr bytes drifted from " << path;

    // The fixture conversion must not have cost fidelity: replaying the
    // golden event stream reproduces the batch analysis byte-for-byte, and
    // the artifact is >= 10x smaller than the pcap it replaced.
    auto reader = replay::TvcrReader::from_bytes(tvcr);
    ASSERT_TRUE(reader.ok()) << reader.error().message;
    replay::ReplayEngine engine(std::move(reader).value());
    auto replayed = engine.run(result.device_ip);
    ASSERT_TRUE(replayed.ok()) << replayed.error().message;
    EXPECT_EQ(replay::canonical_report(replayed.value()),
              replay::canonical_report(result.analyze()));
    const Bytes pcap = net::to_pcap_bytes(result.capture);
    EXPECT_GE(pcap.size(), tvcr.size() * 10U)
        << "events-mode tvcr lost its >=10x size advantage over pcap";
}

TEST(FaultGolden, ImpairedCaptureRoundTripsThroughFramesModeTvcr) {
    // Frames mode keeps the raw frame bytes: pcap -> tvcr -> pcap must be
    // lossless down to the byte, even for an impaired capture whose wire
    // traffic includes retransmissions and duplicates.
    const auto result =
        core::ExperimentRunner::run(impaired_spec(canonical_fault_spec(), tv::Brand::kSamsung));
    replay::TvcrOptions options;
    options.keep_frames = true;
    const Bytes tvcr = replay::to_tvcr_bytes(result.capture, options);
    const auto packets = replay::from_tvcr_bytes(tvcr);
    ASSERT_TRUE(packets.ok()) << packets.error().message;
    EXPECT_EQ(net::to_pcap_bytes(packets.value()), net::to_pcap_bytes(result.capture));
}

// ------------------------------------------------------------------- soak

TEST(FaultSoak, HeavySweepAcrossSeedsStaysByteExact) {
    // Heavier, slower variant of the loss sweep for the CI soak job: more
    // seeds per rate, catastrophic rates included. Gated behind an env var so
    // the default unit lane stays fast.
    if (std::getenv("TVACR_FAULT_SOAK") == nullptr) {
        GTEST_SKIP() << "set TVACR_FAULT_SOAK=1 to run the heavy fault soak";
    }
    for (const double loss : {0.05, 0.20, 0.50}) {
        for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
            SCOPED_TRACE(testing::Message() << "loss=" << loss << " seed=" << seed);
            FaultSpec spec;
            spec.loss = loss;
            spec.duplicate = 0.05;
            spec.reorder = 0.05;
            // At 50% loss some seeds legitimately exhaust the SYN retry
            // budget; the contract is then a clean give-up, never corruption.
            run_patterned_exchange(spec, seed, /*allow_connect_failure=*/loss >= 0.5);
        }
    }
}

}  // namespace
}  // namespace tvacr::fault
