// Property-style tests: parameterized sweeps over wire-format round trips,
// transport invariants, and robustness of every deserializer against
// mutated and random inputs (decoders must fail cleanly, never crash or
// hang, on arbitrary bytes).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dns/message.hpp"
#include "fp/batch.hpp"
#include "net/pcap.hpp"
#include "sim/access_point.hpp"
#include "sim/cloud.hpp"
#include "sim/station.hpp"
#include "sim/tcp.hpp"
#include "tv/acr_backend.hpp"

namespace tvacr {
namespace {

// ----------------------------------------------- batch encoding round trips

using BatchCase = std::tuple<fp::BatchEncoding, bool /*audio*/, int /*records*/, int /*run*/>;

class BatchRoundTrip : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchRoundTrip, PreservesRecords) {
    const auto [encoding, audio, records, run_length] = GetParam();
    fp::FingerprintBatch batch;
    batch.device_id = 0xD00D;
    batch.start_ms = 5'000'000;
    batch.capture_period_ms = 10;
    batch.has_audio = audio;
    for (int i = 0; i < records; ++i) {
        fp::CaptureRecord record;
        record.offset_ms = static_cast<std::uint32_t>(i) * 10;
        record.video = splitmix64(static_cast<std::uint64_t>(i / run_length));
        record.detail = static_cast<std::uint16_t>(i / run_length);
        record.audio = audio ? static_cast<std::uint32_t>(i / run_length) : 0;
        batch.records.push_back(record);
    }
    const auto restored = fp::FingerprintBatch::deserialize(batch.serialize(encoding));
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(restored.value().records.size(), batch.records.size());
    for (std::size_t i = 0; i < batch.records.size(); ++i) {
        EXPECT_EQ(restored.value().records[i].video, batch.records[i].video);
        EXPECT_EQ(restored.value().records[i].detail, batch.records[i].detail);
        EXPECT_EQ(restored.value().records[i].audio, batch.records[i].audio);
        EXPECT_EQ(restored.value().records[i].offset_ms, batch.records[i].offset_ms);
    }
    EXPECT_EQ(restored.value().device_id, batch.device_id);
    EXPECT_EQ(restored.value().has_audio, batch.has_audio);
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, BatchRoundTrip,
    ::testing::Combine(::testing::Values(fp::BatchEncoding::kRaw, fp::BatchEncoding::kDeltaRle,
                                         fp::BatchEncoding::kCompactRaw,
                                         fp::BatchEncoding::kCompactRle),
                       ::testing::Bool(), ::testing::Values(0, 1, 7, 150, 1500),
                       ::testing::Values(1, 4, 50)));

// Backlog-shaped batches: an acr_client outage hold-back flush accumulates
// for far longer than one upload window, so offsets span more than 2^15
// capture periods — beyond what the compact encodings can represent. Every
// encoding must still round-trip exactly (the compact ones by falling back
// to kRaw on the wire).
class BacklogBatchRoundTrip : public ::testing::TestWithParam<fp::BatchEncoding> {};

TEST_P(BacklogBatchRoundTrip, LongOffsetBatchesSurviveEveryEncoding) {
    const auto encoding = GetParam();
    Rng rng(0xACC0 + static_cast<std::uint64_t>(encoding));
    fp::FingerprintBatch batch;
    batch.device_id = 0xBAC7106;
    batch.start_ms = 7'200'000;
    batch.capture_period_ms = 500;  // Samsung cadence
    batch.has_audio = true;
    std::uint32_t offset_units = 0;
    for (int i = 0; i < 400; ++i) {
        // Sparse, period-aligned offsets: mean gap ~150 periods, so the
        // batch spans ~60000 periods, well past the 15-bit compact limit.
        offset_units += static_cast<std::uint32_t>(rng.uniform(1, 300));
        fp::CaptureRecord record;
        record.offset_ms = offset_units * 500U;
        record.video = splitmix64(static_cast<std::uint64_t>(i) * 77 + 1);  // all distinct
        record.detail = static_cast<std::uint16_t>(i);
        record.audio = static_cast<std::uint32_t>(i) + 9;
        batch.records.push_back(record);
    }
    const auto restored = fp::FingerprintBatch::deserialize(batch.serialize(encoding));
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value(), batch);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, BacklogBatchRoundTrip,
                         ::testing::Values(fp::BatchEncoding::kRaw, fp::BatchEncoding::kDeltaRle,
                                           fp::BatchEncoding::kCompactRaw,
                                           fp::BatchEncoding::kCompactRle));

// --------------------------------------------------------- DNS name sweeps

class DnsNameRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DnsNameRoundTrip, RandomNamesSurviveCompressionCodec) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    // Build several random-but-valid names, encode them into one buffer
    // with shared compression state, and decode them all back.
    std::vector<dns::DomainName> names;
    ByteWriter out;
    dns::CompressionMap offsets;
    for (int n = 0; n < 8; ++n) {
        std::string text;
        const int labels = static_cast<int>(rng.uniform(1, 5));
        for (int l = 0; l < labels; ++l) {
            if (l != 0) text += '.';
            const int len = static_cast<int>(rng.uniform(1, 12));
            for (int c = 0; c < len; ++c) {
                text += static_cast<char>('a' + rng.uniform(0, 25));
            }
        }
        // Half the names share a suffix to exercise pointer reuse.
        if (n % 2 == 1 && !names.empty()) text += "." + names[0].to_string();
        auto name = dns::DomainName::parse(text);
        ASSERT_TRUE(name.ok()) << text;
        names.push_back(name.value());
        encode_name(names.back(), out, offsets);
    }
    ByteReader in(out.view());
    for (const auto& expected : names) {
        const auto decoded = dns::decode_name(in);
        ASSERT_TRUE(decoded.ok());
        EXPECT_EQ(decoded.value(), expected);
    }
    EXPECT_TRUE(in.at_end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsNameRoundTrip, ::testing::Range(1, 17));

// ------------------------------------------------- TCP exchange size sweeps

struct ExchangeCase {
    std::size_t request;
    std::size_t response;
};

class TcpExchangeSweep : public ::testing::TestWithParam<ExchangeCase> {};

TEST_P(TcpExchangeSweep, PayloadsArriveIntactInBothDirections) {
    const auto param = GetParam();
    sim::Simulator simulator;
    sim::Cloud cloud(simulator, 5);
    sim::AccessPoint ap(simulator, net::MacAddress::local(1), net::Ipv4Address(192, 168, 4, 1),
                        sim::LatencyModel{SimTime::millis(2), SimTime::micros(250)}, 6);
    ap.set_cloud(cloud);
    sim::Station station(simulator, "dev", net::MacAddress::local(2),
                         net::Ipv4Address(192, 168, 4, 23));
    station.attach(ap);

    Bytes seen_request;
    sim::TcpConnection connection(
        simulator, station, cloud, net::Endpoint{net::Ipv4Address(23, 0, 0, 1), 443},
        [&](BytesView request) {
            seen_request.assign(request.begin(), request.end());
            Bytes response(param.response);
            for (std::size_t i = 0; i < response.size(); ++i) {
                response[i] = static_cast<std::uint8_t>(i * 7);
            }
            return response;
        });

    Bytes request(param.request);
    for (std::size_t i = 0; i < request.size(); ++i) {
        request[i] = static_cast<std::uint8_t>(i * 13);
    }
    Bytes got_response;
    connection.connect([&]() {
        connection.exchange(request, [&](Bytes response) { got_response = std::move(response); });
    });
    simulator.run_all();

    EXPECT_EQ(seen_request, request);
    ASSERT_EQ(got_response.size(), std::max<std::size_t>(param.response, 1));
    if (param.response > 0) {
        for (std::size_t i = 0; i < got_response.size(); ++i) {
            ASSERT_EQ(got_response[i], static_cast<std::uint8_t>(i * 7)) << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpExchangeSweep,
                         ::testing::Values(ExchangeCase{1, 1}, ExchangeCase{100, 0},
                                           ExchangeCase{1460, 1460}, ExchangeCase{1461, 2920},
                                           ExchangeCase{20000, 300}, ExchangeCase{64, 50000},
                                           ExchangeCase{17000, 17000}));

// ------------------------------------------------ decoder robustness (fuzz)

Bytes random_bytes(Rng& rng, std::size_t max_size) {
    Bytes out(static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(max_size))));
    for (auto& byte : out) byte = static_cast<std::uint8_t>(rng());
    return out;
}

template <typename Decoder>
void fuzz_decoder(const char* name, std::uint64_t seed, Decoder decode,
                  const Bytes& valid_sample) {
    Rng rng(seed);
    // Pure random inputs.
    for (int i = 0; i < 300; ++i) {
        const Bytes junk = random_bytes(rng, 512);
        decode(junk);  // must not crash; result may be ok or error
    }
    // Mutations of a valid message: truncations and byte flips.
    for (std::size_t cut = 0; cut < valid_sample.size(); cut += 3) {
        Bytes truncated(valid_sample.begin(),
                        valid_sample.begin() + static_cast<std::ptrdiff_t>(cut));
        decode(truncated);
    }
    for (int i = 0; i < 300; ++i) {
        Bytes mutated = valid_sample;
        const auto index =
            static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(mutated.size()) - 1));
        mutated[index] ^= static_cast<std::uint8_t>(1 + (rng() & 0xFE));
        decode(mutated);
    }
    SUCCEED() << name;
}

TEST(FuzzTest, DnsMessageDecoderNeverCrashes) {
    const auto name = dns::DomainName::parse("acr-eu-prd.samsungcloud.tv").value();
    const auto query = make_query(7, name, dns::RecordType::kA);
    const auto sample =
        make_response(query, {dns::ResourceRecord::a(name, net::Ipv4Address(1, 2, 3, 4))},
                      dns::ResponseCode::kNoError)
            .encode();
    fuzz_decoder("dns", 101, [](const Bytes& data) { (void)dns::DnsMessage::decode(data); },
                 sample);
}

TEST(FuzzTest, BatchDecoderNeverCrashes) {
    fp::FingerprintBatch batch;
    batch.capture_period_ms = 10;
    batch.has_audio = true;
    for (int i = 0; i < 40; ++i) {
        batch.records.push_back(
            fp::CaptureRecord{static_cast<std::uint32_t>(i * 10), splitmix64(i / 5U),
                              static_cast<std::uint32_t>(i), static_cast<std::uint16_t>(i)});
    }
    for (const auto encoding : {fp::BatchEncoding::kRaw, fp::BatchEncoding::kDeltaRle,
                                fp::BatchEncoding::kCompactRle}) {
        fuzz_decoder("batch", 202,
                     [](const Bytes& data) { (void)fp::FingerprintBatch::deserialize(data); },
                     batch.serialize(encoding));
    }
}

TEST(FuzzTest, PcapReaderNeverCrashes) {
    const net::FrameBuilder builder(net::MacAddress::local(1), net::MacAddress::local(2));
    std::vector<net::Packet> packets;
    for (int i = 0; i < 5; ++i) {
        packets.push_back(builder.tcp(SimTime::millis(i),
                                      net::Endpoint{net::Ipv4Address(10, 0, 0, 1), 1},
                                      net::Endpoint{net::Ipv4Address(10, 0, 0, 2), 2},
                                      static_cast<std::uint32_t>(i), 0, net::TcpFlags::kAck,
                                      Bytes(64, 0x11)));
    }
    fuzz_decoder("pcap", 303, [](const Bytes& data) { (void)net::from_pcap_bytes(data); },
                 net::to_pcap_bytes(packets));
}

TEST(FuzzTest, PacketParserNeverCrashes) {
    const net::FrameBuilder builder(net::MacAddress::local(1), net::MacAddress::local(2));
    const auto sample = builder.udp(SimTime{}, net::Endpoint{net::Ipv4Address(10, 0, 0, 1), 53},
                                    net::Endpoint{net::Ipv4Address(10, 0, 0, 2), 53},
                                    Bytes(80, 0x22));
    fuzz_decoder("packet", 404,
                 [](const Bytes& data) {
                     (void)net::parse_packet(net::Packet{SimTime{}, data});
                 },
                 sample.data);
}

TEST(FuzzTest, AcrWireDecodersNeverCrash) {
    tv::AcrRequest request;
    request.type = tv::AcrMessageType::kTelemetry;
    request.body = Bytes(64, 0x33);
    fuzz_decoder("acr-request", 505,
                 [](const Bytes& data) { (void)tv::AcrRequest::deserialize(data); },
                 request.serialize());

    tv::AcrResponse response;
    response.recognized = true;
    response.padding_size = 32;
    fuzz_decoder("acr-response", 606,
                 [](const Bytes& data) { (void)tv::AcrResponse::deserialize(data); },
                 response.serialize());
}

TEST(FuzzTest, BackendSurvivesArbitraryPayloads) {
    fp::ContentLibrary library;
    for (const auto& info : fp::builtin_catalog(1)) library.add(info);
    tv::AcrBackend backend(tv::Brand::kSamsung, tv::Country::kUk, library);
    Rng rng(707);
    for (int i = 0; i < 300; ++i) {
        const Bytes junk = random_bytes(rng, 256);
        const Bytes response = backend.handle(junk);
        EXPECT_GE(response.size(), 17U);  // always a well-formed error reply
    }
}

// ------------------------------------------------------ thread pool invariants

TEST(ThreadPoolTest, EveryTaskExecutesExactlyOnce) {
    constexpr int kTasks = 500;
    common::ThreadPool pool(4);
    std::vector<std::atomic<int>> executions(kTasks);
    std::vector<std::future<int>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([&executions, i]() {
            executions[static_cast<std::size_t>(i)].fetch_add(1);
            return i;
        }));
    }
    for (int i = 0; i < kTasks; ++i) {
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);  // results map 1:1 to tasks
    }
    for (int i = 0; i < kTasks; ++i) {
        EXPECT_EQ(executions[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
    }
}

TEST(ThreadPoolTest, TaskExceptionSurfacesAtFutureGet) {
    common::ThreadPool pool(2);
    auto throwing = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
    auto healthy = pool.submit([]() { return 42; });
    EXPECT_THROW(throwing.get(), std::runtime_error);
    // A failing task must not poison the pool or its neighbours.
    EXPECT_EQ(healthy.get(), 42);
    EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ShutdownDrainsAcceptedTasksUnderConcurrentSubmission) {
    // Submitters race the pool's shutdown (the destructor's drain path).
    // Every submit that was accepted must execute before shutdown returns;
    // every rejected submit must throw — no task is silently dropped.
    common::ThreadPool pool(3);
    std::atomic<int> executed{0};
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&]() {
            for (int i = 0; i < 10000; ++i) {
                try {
                    auto future = pool.submit([&executed]() { executed.fetch_add(1); });
                    accepted.fetch_add(1);
                    (void)future;  // discarded future must not block shutdown
                } catch (const std::runtime_error&) {
                    rejected.fetch_add(1);
                    break;
                }
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pool.shutdown();  // concurrent with active submitters
    const int executed_at_shutdown = executed.load();
    for (auto& submitter : submitters) submitter.join();
    EXPECT_EQ(executed_at_shutdown, executed.load());  // nothing runs after shutdown returns
    EXPECT_EQ(executed.load(), accepted.load());
    // The pool destructor (second shutdown) must be a clean no-op.
}

TEST(ThreadPoolTest, ObserverSeesEveryTaskWithOrderedTimings) {
    // The profiling observer must fire exactly once per task with a unique
    // sequence number, monotone enqueue <= start <= finish timestamps, and a
    // worker index inside the pool.
    constexpr int kTasks = 50;
    constexpr std::size_t kWorkers = 3;
    std::mutex mutex;
    std::vector<common::ThreadPool::TaskTiming> timings;
    std::vector<std::future<void>> futures;
    {
        common::ThreadPool pool(kWorkers);
        pool.set_observer([&mutex, &timings](const common::ThreadPool::TaskTiming& timing) {
            const std::lock_guard<std::mutex> lock(mutex);
            timings.push_back(timing);
        });
        futures.reserve(kTasks);
        for (int i = 0; i < kTasks; ++i) {
            futures.push_back(pool.submit([]() {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            }));
        }
        for (auto& future : futures) future.get();
        // The observer fires *after* the future is satisfied — only shutdown
        // (joining the workers) guarantees every callback has completed.
        pool.shutdown();
    }
    ASSERT_EQ(timings.size(), static_cast<std::size_t>(kTasks));
    std::vector<bool> seen(kTasks, false);
    for (const auto& timing : timings) {
        ASSERT_LT(timing.sequence, static_cast<std::uint64_t>(kTasks));
        EXPECT_FALSE(seen[static_cast<std::size_t>(timing.sequence)]) << "duplicate observation";
        seen[static_cast<std::size_t>(timing.sequence)] = true;
        EXPECT_LE(timing.enqueue_ns, timing.start_ns);
        EXPECT_LE(timing.start_ns, timing.finish_ns);
        EXPECT_LT(timing.worker, kWorkers);
        EXPECT_GE(timing.queue_wait_ns(), 0);
        EXPECT_GE(timing.run_ns(), 0);
    }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedBacklog) {
    // One slow worker, many queued tasks, immediate destruction: the
    // destructor must run the entire accepted backlog before joining.
    std::atomic<int> executed{0};
    constexpr int kTasks = 64;
    {
        common::ThreadPool pool(1);
        for (int i = 0; i < kTasks; ++i) {
            auto future = pool.submit([&executed]() {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                executed.fetch_add(1);
            });
            (void)future;
        }
    }
    EXPECT_EQ(executed.load(), kTasks);
}

// ------------------------------------------------ simulator determinism sweep

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, SameSeedSameFrameCount) {
    // A miniature topology driven by a pseudo-random workload must produce
    // identical captures for identical seeds.
    const auto run_once = [&]() -> std::size_t {
        sim::Simulator simulator;
        sim::Cloud cloud(simulator, GetParam());
        sim::AccessPoint ap(simulator, net::MacAddress::local(1),
                            net::Ipv4Address(192, 168, 4, 1),
                            sim::LatencyModel{SimTime::millis(2), SimTime::millis(1)},
                            GetParam() + 1);
        ap.set_cloud(cloud);
        sim::Station station(simulator, "dev", net::MacAddress::local(2),
                             net::Ipv4Address(192, 168, 4, 23));
        station.attach(ap);
        std::size_t frames = 0;
        ap.set_tap([&](const net::Packet&) { ++frames; });

        sim::TcpConnection connection(
            simulator, station, cloud, net::Endpoint{net::Ipv4Address(23, 0, 0, 1), 443},
            [](BytesView request) { return Bytes(request.size() / 2 + 1, 0); });
        Rng rng(GetParam());
        connection.connect([&]() {
            for (int i = 0; i < 10; ++i) {
                connection.exchange(Bytes(static_cast<std::size_t>(rng.uniform(1, 5000)), 1),
                                    [](Bytes) {});
            }
        });
        simulator.run_all();
        return frames;
    };
    EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep, ::testing::Values(1, 2, 3, 42, 999));

}  // namespace
}  // namespace tvacr
