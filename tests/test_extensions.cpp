// Tests for the future-work extensions: MITM payload auditing, the
// ACR -> ad-personalization link, DNS blocklist interventions, and fault
// injection on the resolver path.
#include <gtest/gtest.h>

#include "analysis/acr_detect.hpp"
#include "core/campaign.hpp"
#include "core/mitm_audit.hpp"
#include "sim/dns_client.hpp"
#include "tv/ads.hpp"

namespace tvacr {
namespace {

// ------------------------------------------------------------------- MITM

core::ExperimentSpec mitm_spec(tv::Scenario scenario, tv::Phase phase = tv::Phase::kLInOIn) {
    core::ExperimentSpec spec;
    spec.brand = tv::Brand::kSamsung;
    spec.country = tv::Country::kUk;
    spec.scenario = scenario;
    spec.phase = phase;
    spec.duration = SimTime::minutes(6);
    spec.seed = 8;
    return spec;
}

TEST(MitmAuditTest, RevealsBatchContentsOnLinear) {
    const auto report = core::MitmAudit::run(mitm_spec(tv::Scenario::kLinear));
    EXPECT_GT(report.records_total, 10U);
    EXPECT_EQ(report.records_unparsed, 0U);

    const core::MitmDomainFinding* fingerprint_channel = nullptr;
    for (const auto& finding : report.findings) {
        if (finding.domain == "acr-eu-prd.samsungcloud.tv") fingerprint_channel = &finding;
    }
    ASSERT_NE(fingerprint_channel, nullptr);
    EXPECT_GT(fingerprint_channel->fingerprint_records, 100U);
    EXPECT_EQ(fingerprint_channel->device_ids.size(), 1U);  // one stable identifier
    EXPECT_GT(fingerprint_channel->recognized_responses, 0U);
    EXPECT_FALSE(fingerprint_channel->recognized_titles.empty());
    EXPECT_GT(fingerprint_channel->message_counts.at(tv::AcrMessageType::kFingerprintBatch), 3U);
}

TEST(MitmAuditTest, QuietScenarioCarriesNoFingerprints) {
    const auto report = core::MitmAudit::run(mitm_spec(tv::Scenario::kOtt));
    for (const auto& finding : report.findings) {
        EXPECT_EQ(finding.fingerprint_records, 0U) << finding.domain;
    }
}

TEST(MitmAuditTest, OptedOutInterceptsNothingOnAcrChannels) {
    const auto report = core::MitmAudit::run(
        mitm_spec(tv::Scenario::kLinear, tv::Phase::kLInOOut));
    EXPECT_EQ(report.records_total, 0U);
}

TEST(MitmAuditTest, WithoutMitmConfigNoPlaintextIsRecorded) {
    const auto spec = mitm_spec(tv::Scenario::kLinear);
    core::Testbed bed(core::ExperimentRunner::testbed_config(spec));  // mitm=false
    (void)core::ExperimentRunner::run_on(bed, spec);
    EXPECT_TRUE(bed.mitm_records().empty());
}

TEST(MitmAuditTest, RenderMentionsLinkability) {
    const auto report = core::MitmAudit::run(mitm_spec(tv::Scenario::kLinear));
    const std::string text = report.render();
    EXPECT_NE(text.find("device identifiers"), std::string::npos);
    EXPECT_NE(text.find("fingerprint-batch"), std::string::npos);
}

// --------------------------------------------------------------------- ads

struct AdsFixture : ::testing::Test {
    fp::ContentLibrary library;
    std::unique_ptr<fp::AudienceProfiler> profiler;

    void SetUp() override {
        for (const auto& info : fp::builtin_catalog(21)) library.add(info);
        profiler = std::make_unique<fp::AudienceProfiler>(library);
    }

    void give_profile(std::uint64_t device, std::uint64_t content_id, SimTime watched) {
        fp::MatchResult match;
        match.content_id = content_id;
        match.confidence = 0.9;
        profiler->record_match(device, match, watched);
    }

    [[nodiscard]] std::uint64_t sports_content() const {
        for (const auto& [id, entry] : library.entries()) {
            if (entry.info.genre == fp::Genre::kSports) return id;
        }
        return 0;
    }
};

TEST_F(AdsFixture, CreativePoolCoversAllSegments) {
    const auto creatives = tv::builtin_creatives();
    std::set<std::string> targets;
    int untargeted = 0;
    for (const auto& creative : creatives) {
        if (creative.target_segment.empty()) {
            ++untargeted;
        } else {
            targets.insert(creative.target_segment);
        }
    }
    EXPECT_GE(untargeted, 3);
    for (const char* segment : {"sports-enthusiast", "news-junkie", "household-with-children",
                                "binge-watcher", "gamer", "shopping-intender"}) {
        EXPECT_TRUE(targets.contains(segment)) << segment;
    }
}

TEST_F(AdsFixture, ProfiledDeviceGetsTargetedMajority) {
    give_profile(42, sports_content(), SimTime::hours(2));
    tv::AdDecisionService ads(*profiler, 5);
    int sports_ads = 0;
    for (int i = 0; i < 300; ++i) {
        const auto decision = ads.select(42);
        if (decision.personalized) {
            EXPECT_EQ(decision.matched_segment, "sports-enthusiast");
            ++sports_ads;
        }
    }
    // targeting_rate 0.75 +/- sampling noise.
    EXPECT_GT(sports_ads, 180);
    EXPECT_LT(sports_ads, 280);
    EXPECT_EQ(ads.personalized_decisions(), static_cast<std::uint64_t>(sports_ads));
}

TEST_F(AdsFixture, UnprofiledDeviceNeverPersonalized) {
    tv::AdDecisionService ads(*profiler, 5);
    for (int i = 0; i < 100; ++i) {
        const auto decision = ads.select(777);
        EXPECT_FALSE(decision.personalized);
        EXPECT_TRUE(decision.creative.target_segment.empty());
    }
    EXPECT_EQ(ads.personalized_decisions(), 0U);
}

TEST_F(AdsFixture, TargetingRateZeroDisablesPersonalization) {
    give_profile(42, sports_content(), SimTime::hours(2));
    tv::AdOptions options;
    options.targeting_rate = 0.0;
    tv::AdDecisionService ads(*profiler, 5, options);
    for (int i = 0; i < 50; ++i) EXPECT_FALSE(ads.select(42).personalized);
}

TEST_F(AdsFixture, DeterministicForSeed) {
    give_profile(42, sports_content(), SimTime::hours(2));
    tv::AdDecisionService a(*profiler, 9);
    tv::AdDecisionService b(*profiler, 9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a.select(42).creative.id, b.select(42).creative.id);
    }
}

// --------------------------------------------------------- DNS intervention

TEST(BlocklistTest, BlockedNamesAnswerNxdomainAndAcrStops) {
    core::ExperimentSpec spec;
    spec.brand = tv::Brand::kLg;
    spec.country = tv::Country::kUk;
    spec.scenario = tv::Scenario::kLinear;
    spec.duration = SimTime::minutes(5);
    spec.seed = 61;

    core::Testbed bed(core::ExperimentRunner::testbed_config(spec));
    bed.cloud().block_domain("alphonso.tv");
    const auto result = core::ExperimentRunner::run_on(bed, spec);

    EXPECT_GT(bed.cloud().blocked_queries(), 0U);
    EXPECT_EQ(result.batches_uploaded, 0U);
    const auto trace = core::trace_of(result);
    EXPECT_DOUBLE_EQ(trace.total_acr_kb, 0.0);
    // Non-blocked platform traffic still flows.
    EXPECT_GT(result.capture.size(), 20U);
}

TEST(BlocklistTest, SubdomainMatching) {
    sim::Simulator simulator;
    sim::Cloud cloud(simulator, 1);
    cloud.block_domain("alphonso.tv");
    EXPECT_TRUE(cloud.is_blocked(dns::DomainName::parse("eu-acr9.alphonso.tv").value()));
    EXPECT_TRUE(cloud.is_blocked(dns::DomainName::parse("alphonso.tv").value()));
    EXPECT_FALSE(cloud.is_blocked(dns::DomainName::parse("alphonso.tv.example.com").value()));
    EXPECT_FALSE(cloud.is_blocked(dns::DomainName::parse("samsungacr.com").value()));
}

// ------------------------------------------------------------ voice service

TEST(VoiceToggleTest, VoiceServiceGatedIndependentlyOfAcr) {
    core::ExperimentSpec spec;
    spec.brand = tv::Brand::kLg;
    spec.country = tv::Country::kUk;
    spec.scenario = tv::Scenario::kLinear;
    spec.duration = SimTime::minutes(12);
    spec.seed = 71;

    const auto voice_domain = tv::platform_profile(spec.brand, spec.country).voice_domain;
    ASSERT_FALSE(voice_domain.empty());

    // Baseline: both services run.
    {
        core::Testbed bed(core::ExperimentRunner::testbed_config(spec));
        const auto result = core::ExperimentRunner::run_on(bed, spec);
        const auto analyzer = result.analyze();
        EXPECT_GT(analyzer.kilobytes_for(voice_domain), 1.0);
        EXPECT_GT(core::trace_of(result).total_acr_kb, 100.0);
    }
    // Flip only the voice agreement: voice goes silent, ACR unaffected.
    {
        core::Testbed bed(core::ExperimentRunner::testbed_config(spec));
        ASSERT_TRUE(bed.tv().set_privacy_toggle("Voice information agreement", false));
        bed.tv().set_scenario(spec.scenario);
        bed.plug().schedule_cycle(SimTime::seconds(1), SimTime::seconds(1) + spec.duration);
        bed.simulator().run_until(SimTime::seconds(6) + spec.duration);
        analysis::CaptureAnalyzer analyzer(bed.tv().station().ip());
        analyzer.ingest_all(bed.capture());
        EXPECT_DOUBLE_EQ(analyzer.kilobytes_for(voice_domain), 0.0);
        double acr_kb = 0.0;
        for (const auto& domain : bed.tv().acr().domain_names()) {
            acr_kb += analyzer.kilobytes_for(domain);
        }
        EXPECT_GT(acr_kb, 100.0);
    }
    // Flip only viewing information: ACR goes silent, voice continues.
    {
        core::Testbed bed(core::ExperimentRunner::testbed_config(spec));
        ASSERT_TRUE(bed.tv().set_privacy_toggle("Viewing information agreement", false));
        bed.tv().set_scenario(spec.scenario);
        bed.plug().schedule_cycle(SimTime::seconds(1), SimTime::seconds(1) + spec.duration);
        bed.simulator().run_until(SimTime::seconds(6) + spec.duration);
        analysis::CaptureAnalyzer analyzer(bed.tv().station().ip());
        analyzer.ingest_all(bed.capture());
        EXPECT_GT(analyzer.kilobytes_for(voice_domain), 1.0);
        double acr_kb = 0.0;
        for (const auto& domain : bed.tv().acr().domain_names()) {
            acr_kb += analyzer.kilobytes_for(domain);
        }
        EXPECT_DOUBLE_EQ(acr_kb, 0.0);
    }
}

TEST(VoiceToggleTest, SamsungHasNoVoiceService) {
    // Table 1 lists no Samsung voice toggle; the profile has no endpoint.
    EXPECT_TRUE(tv::platform_profile(tv::Brand::kSamsung, tv::Country::kUk).voice_domain.empty());
    core::ExperimentSpec spec;
    spec.brand = tv::Brand::kSamsung;
    spec.duration = SimTime::minutes(2);
    core::Testbed bed(core::ExperimentRunner::testbed_config(spec));
    EXPECT_EQ(bed.tv().voice(), nullptr);
}

// ------------------------------------------------- lossy network experiment

TEST(LossyExperimentTest, AcrPipelineSurvivesPathLoss) {
    // 5% data loss on every ACR route: the client retransmits, the backend
    // still recognizes content, and the analysis still identifies the
    // endpoints — the audit methodology is robust to real-world loss.
    core::ExperimentSpec spec;
    spec.brand = tv::Brand::kLg;
    spec.country = tv::Country::kUk;
    spec.scenario = tv::Scenario::kLinear;
    spec.duration = SimTime::minutes(6);
    spec.seed = 99;

    core::Testbed bed(core::ExperimentRunner::testbed_config(spec));
    for (const auto& domain : bed.tv().acr().domain_names()) {
        if (const auto address = bed.address_of(domain)) {
            bed.cloud().set_route_loss(*address, 0.05);
        }
    }
    const auto result = core::ExperimentRunner::run_on(bed, spec);
    EXPECT_GT(bed.cloud().data_segments_dropped(), 0U);
    EXPECT_GT(result.backend_matches, 3U);

    const auto analyzer = result.analyze();
    const analysis::AcrDomainIdentifier identifier;
    const auto acr = identifier.acr_domains(analyzer, nullptr, spec.duration);
    EXPECT_EQ(acr.size(), 1U);
}

// ------------------------------------------------------------ loss injection

struct LossyFixture : ::testing::Test {
    sim::Simulator simulator;
    sim::Cloud cloud{simulator, 3};
    sim::AccessPoint ap{simulator, net::MacAddress::local(1), net::Ipv4Address(192, 168, 4, 1),
                        sim::LatencyModel{SimTime::millis(2), SimTime::micros(100)}, 4};
    sim::Station tv{simulator, "tv", net::MacAddress::local(2), net::Ipv4Address(192, 168, 4, 23)};

    void SetUp() override {
        ap.set_cloud(cloud);
        tv.attach(ap);
        cloud.enable_dns(net::Ipv4Address(9, 9, 9, 9));
        cloud.zone().add_a("acr-eu-prd.samsungcloud.tv", net::Ipv4Address(23, 0, 1, 10));
    }
};

TEST_F(LossyFixture, ResolverRetriesThroughModerateLoss) {
    cloud.set_dns_drop_rate(0.5);
    sim::DnsClient resolver(simulator, tv, cloud.dns_ip(), 77);
    int resolved = 0;
    int failed = 0;
    for (int i = 0; i < 20; ++i) {
        resolver.resolve("acr-eu-prd.samsungcloud.tv",
                         [&](std::optional<net::Ipv4Address> address) {
                             (address ? resolved : failed) += 1;
                         });
        simulator.run_all();
    }
    // With 3 attempts at 50% loss, the failure probability per lookup is
    // 12.5%; the first success also populates the cache, making later
    // lookups loss-immune.
    EXPECT_GT(resolved, 15);
    EXPECT_EQ(resolved + failed, 20);
}

TEST_F(LossyFixture, TotalLossFailsCleanlyAfterRetries) {
    cloud.set_dns_drop_rate(1.0);
    sim::DnsClient::Config config;
    config.timeout = SimTime::seconds(1);
    config.max_attempts = 2;
    sim::DnsClient resolver(simulator, tv, cloud.dns_ip(), 77, config);
    bool called = false;
    std::optional<net::Ipv4Address> answer;
    resolver.resolve("acr-eu-prd.samsungcloud.tv", [&](std::optional<net::Ipv4Address> address) {
        called = true;
        answer = address;
    });
    simulator.run_all();
    EXPECT_TRUE(called);
    EXPECT_FALSE(answer.has_value());
    EXPECT_EQ(resolver.queries_sent(), 2U);
}

}  // namespace
}  // namespace tvacr
