// Tests for the TV device layer: privacy settings (Table 1), platform
// domain sets, channel schedules, mode gating, the ACR backend protocol,
// and the SmartTv device model end-to-end on a small testbed.
#include <gtest/gtest.h>

#include "sim/access_point.hpp"
#include "sim/cloud.hpp"
#include "tv/acr_backend.hpp"
#include "tv/calibration.hpp"
#include "tv/channel.hpp"
#include "tv/platform.hpp"
#include "tv/privacy.hpp"
#include "tv/scenario.hpp"
#include "tv/smart_tv.hpp"

namespace tvacr::tv {
namespace {

// ----------------------------------------------------------------- privacy

TEST(PrivacySettingsTest, FactoryDefaultsPermitTracking) {
    for (const Brand brand : {Brand::kLg, Brand::kSamsung}) {
        const auto settings = PrivacySettings::defaults(brand);
        EXPECT_TRUE(settings.viewing_information_allowed()) << to_string(brand);
        EXPECT_TRUE(settings.any_tracking_allowed());
    }
}

TEST(PrivacySettingsTest, TableOneToggleCounts) {
    // Table 1 lists 11 LG toggles and 6 Samsung toggles.
    EXPECT_EQ(PrivacySettings::defaults(Brand::kLg).toggles().size(), 11U);
    EXPECT_EQ(PrivacySettings::defaults(Brand::kSamsung).toggles().size(), 6U);
}

TEST(PrivacySettingsTest, OptOutAllDisablesEverything) {
    for (const Brand brand : {Brand::kLg, Brand::kSamsung}) {
        auto settings = PrivacySettings::defaults(brand);
        settings.opt_out_all();
        EXPECT_FALSE(settings.viewing_information_allowed());
        EXPECT_FALSE(settings.any_tracking_allowed());
        settings.opt_in_all();
        EXPECT_TRUE(settings.viewing_information_allowed());
    }
}

TEST(PrivacySettingsTest, InvertedTogglesTrackWhenDisabled) {
    // LG's "Limit ad tracking" permits tracking while OFF.
    auto settings = PrivacySettings::defaults(Brand::kLg);
    ASSERT_TRUE(settings.set("Limit ad tracking", true));
    bool found = false;
    for (const auto& toggle : settings.toggles()) {
        if (toggle.name == "Limit ad tracking") {
            EXPECT_FALSE(toggle.permits_tracking());
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(PrivacySettingsTest, AcrGateIsViewingInformation) {
    auto samsung = PrivacySettings::defaults(Brand::kSamsung);
    ASSERT_TRUE(
        samsung.set("I consent to viewing information services on this device", false));
    EXPECT_FALSE(samsung.viewing_information_allowed());
    EXPECT_TRUE(samsung.any_tracking_allowed());  // other toggles still on

    auto lg = PrivacySettings::defaults(Brand::kLg);
    ASSERT_TRUE(lg.set("Viewing information agreement", false));
    EXPECT_FALSE(lg.viewing_information_allowed());
}

TEST(PrivacySettingsTest, UnknownToggleRejected) {
    auto settings = PrivacySettings::defaults(Brand::kSamsung);
    EXPECT_FALSE(settings.set("Nonexistent switch", false));
}

// ---------------------------------------------------------------- platform

TEST(PlatformTest, UkDomainSetsMatchPaper) {
    const auto lg = platform_profile(Brand::kLg, Country::kUk);
    ASSERT_EQ(lg.acr_domains.size(), 1U);
    EXPECT_EQ(lg.acr_domains[0].name, "eu-acrX.alphonso.tv");
    EXPECT_TRUE(lg.acr_domains[0].rotates);

    const auto samsung = platform_profile(Brand::kSamsung, Country::kUk);
    ASSERT_EQ(samsung.acr_domains.size(), 4U);  // paper §4.1: four UK domains
}

TEST(PlatformTest, UsSamsungOmitsKeepAliveDomain) {
    const auto samsung = platform_profile(Brand::kSamsung, Country::kUs);
    ASSERT_EQ(samsung.acr_domains.size(), 3U);  // paper §4.3: omits acr0
    for (const auto& domain : samsung.acr_domains) {
        EXPECT_EQ(domain.name.find("acr0"), std::string::npos);
        EXPECT_EQ(domain.name.find("-eu"), std::string::npos);
    }
}

TEST(PlatformTest, RotationSubstitutesNumber) {
    EXPECT_EQ(rotated_name("eu-acrX.alphonso.tv", 7), "eu-acr7.alphonso.tv");
    EXPECT_EQ(rotated_name("tkacrX.alphonso.tv", 0), "tkacr0.alphonso.tv");
    EXPECT_EQ(rotated_name("log-config.samsungacr.com", 3), "log-config.samsungacr.com");
}

TEST(PlatformTest, BootDomainsIncludeEverything) {
    const auto profile = platform_profile(Brand::kSamsung, Country::kUk);
    const auto boot = profile.boot_domains(2);
    EXPECT_EQ(boot.size(), profile.acr_domains.size() + profile.other_domains.size());
}

// ---------------------------------------------------------------- channels

TEST(ChannelScheduleTest, LoopsAndTracksOffsets) {
    const auto catalog = fp::builtin_catalog(99);
    const auto channel = make_broadcast_channel(catalog, SimTime::minutes(10), 1);
    ASSERT_GT(channel.slots().size(), 4U);
    ASSERT_GT(channel.cycle_length().as_micros(), 0);

    const auto first = channel.at(SimTime::seconds(30));
    ASSERT_NE(first.content, nullptr);
    EXPECT_EQ(first.offset, SimTime::seconds(30));

    // One full cycle later, the same content plays at the same offset.
    const auto wrapped = channel.at(SimTime::seconds(30) + channel.cycle_length());
    ASSERT_NE(wrapped.content, nullptr);
    EXPECT_EQ(wrapped.content->id, first.content->id);
    EXPECT_EQ(wrapped.offset, first.offset);
}

TEST(ChannelScheduleTest, ContainsAdBreaks) {
    const auto catalog = fp::builtin_catalog(99);
    const auto channel = make_broadcast_channel(catalog, SimTime::minutes(10), 1);
    int ads = 0;
    for (const auto& slot : channel.slots()) {
        if (slot.content.kind == fp::ContentKind::kAdvertisement) ++ads;
    }
    EXPECT_GE(ads, 4);  // two spots per break, four breaks
}

TEST(ChannelScheduleTest, EmptyScheduleIsSafe) {
    const ChannelSchedule empty;
    EXPECT_EQ(empty.at(SimTime::minutes(5)).content, nullptr);
}

// ------------------------------------------------------------- mode gating

struct ModeCase {
    Brand brand;
    Country country;
    Scenario scenario;
    AcrMode expected;
};

class AcrModeMatrix : public ::testing::TestWithParam<ModeCase> {};

TEST_P(AcrModeMatrix, MatchesPaperFindings) {
    const auto& param = GetParam();
    EXPECT_EQ(acr_mode_for(param.brand, param.country, param.scenario), param.expected)
        << to_string(param.brand) << "/" << to_string(param.country) << "/"
        << to_string(param.scenario);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, AcrModeMatrix,
    ::testing::Values(
        // Linear and HDMI fingerprint everywhere (§4.1).
        ModeCase{Brand::kLg, Country::kUk, Scenario::kLinear, AcrMode::kActive},
        ModeCase{Brand::kLg, Country::kUs, Scenario::kLinear, AcrMode::kActive},
        ModeCase{Brand::kSamsung, Country::kUk, Scenario::kLinear, AcrMode::kActive},
        ModeCase{Brand::kSamsung, Country::kUs, Scenario::kLinear, AcrMode::kActive},
        ModeCase{Brand::kLg, Country::kUk, Scenario::kHdmi, AcrMode::kActive},
        ModeCase{Brand::kSamsung, Country::kUs, Scenario::kHdmi, AcrMode::kActive},
        // FAST: suppressed in the UK, active in the US (§4.3).
        ModeCase{Brand::kLg, Country::kUk, Scenario::kFast, AcrMode::kSuppressed},
        ModeCase{Brand::kLg, Country::kUs, Scenario::kFast, AcrMode::kActive},
        ModeCase{Brand::kSamsung, Country::kUk, Scenario::kFast, AcrMode::kSuppressed},
        ModeCase{Brand::kSamsung, Country::kUs, Scenario::kFast, AcrMode::kActive},
        // OTT never fingerprints (§4.1: Netflix/YouTube).
        ModeCase{Brand::kLg, Country::kUk, Scenario::kOtt, AcrMode::kSuppressed},
        ModeCase{Brand::kSamsung, Country::kUs, Scenario::kOtt, AcrMode::kOff},
        // Samsung UK screen-cast probes; US stays closed (Tables 2 vs 4).
        ModeCase{Brand::kSamsung, Country::kUk, Scenario::kScreenCast, AcrMode::kProbe},
        ModeCase{Brand::kSamsung, Country::kUs, Scenario::kScreenCast, AcrMode::kOff},
        ModeCase{Brand::kSamsung, Country::kUs, Scenario::kIdle, AcrMode::kOff},
        ModeCase{Brand::kLg, Country::kUs, Scenario::kIdle, AcrMode::kSuppressed}));

TEST(AcrScheduleTest, BrandCadencesMatchPaper) {
    const auto lg = acr_schedule(Brand::kLg);
    EXPECT_EQ(lg.capture_period, SimTime::millis(10));    // LG docs via §4.1
    EXPECT_EQ(lg.upload_period, SimTime::seconds(15));    // observed traffic
    EXPECT_EQ(lg.uploads_per_peak, 4);                    // peaks every minute
    EXPECT_FALSE(lg.has_audio);

    const auto samsung = acr_schedule(Brand::kSamsung);
    EXPECT_EQ(samsung.capture_period, SimTime::millis(500));  // Samsung guide
    EXPECT_EQ(samsung.upload_period, SimTime::seconds(60));
    EXPECT_EQ(samsung.uploads_per_peak, 5);  // ~five-minute peaks
    EXPECT_TRUE(samsung.has_audio);
}

// ------------------------------------------------------------- ACR backend

TEST(AcrWireTest, RequestRoundTrip) {
    AcrRequest request;
    request.type = AcrMessageType::kTelemetry;
    request.body = Bytes(100, 0x77);
    const auto decoded = AcrRequest::deserialize(request.serialize());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().type, AcrMessageType::kTelemetry);
    EXPECT_EQ(decoded.value().body, request.body);
}

TEST(AcrWireTest, ResponseRoundTrip) {
    AcrResponse response;
    response.recognized = true;
    response.content_id = 1005;
    response.content_offset_s = 300;
    response.padding_size = 64;
    const auto decoded = AcrResponse::deserialize(response.serialize());
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().recognized);
    EXPECT_EQ(decoded.value().content_id, response.content_id);
    EXPECT_EQ(decoded.value().content_offset_s, response.content_offset_s);
    EXPECT_EQ(decoded.value().padding_size, response.padding_size);
    EXPECT_EQ(response.serialize().size(), 17U + 64U);
}

TEST(AcrWireTest, RejectsGarbage) {
    EXPECT_FALSE(AcrRequest::deserialize(Bytes{0x99, 0, 0, 0, 0}).ok());
    EXPECT_FALSE(AcrRequest::deserialize(Bytes{}).ok());
    EXPECT_FALSE(AcrResponse::deserialize(Bytes{1, 2}).ok());
}

struct BackendFixture : ::testing::Test {
    fp::ContentLibrary library;
    void SetUp() override {
        for (const auto& info : fp::builtin_catalog(555)) library.add(info);
    }
};

TEST_F(BackendFixture, RecognizesBatchAndProfiles) {
    AcrBackend backend(Brand::kSamsung, Country::kUk, library);
    const auto& info = library.entries().begin()->second.info;
    const fp::ContentStream stream(info.seed, info.dynamics);

    fp::FingerprintBatch batch;
    batch.device_id = 77;
    batch.capture_period_ms = 500;
    for (int i = 0; i < 40; ++i) {
        fp::CaptureRecord record;
        record.offset_ms = static_cast<std::uint32_t>(i * 500);
        record.video = fp::dhash(stream.frame_at(SimTime::minutes(2) + SimTime::millis(i * 500)));
        batch.records.push_back(record);
    }
    AcrRequest request;
    request.type = AcrMessageType::kFingerprintBatch;
    request.body = batch.serialize(fp::BatchEncoding::kDeltaRle);

    const Bytes wire = backend.handle(request.serialize());
    const auto response = AcrResponse::deserialize(wire);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.value().recognized);
    EXPECT_EQ(response.value().content_id, info.id);
    EXPECT_EQ(backend.batches_received(), 1U);
    EXPECT_EQ(backend.batches_matched(), 1U);
    EXPECT_NE(backend.profiler().profile(77), nullptr);
}

TEST_F(BackendFixture, UnknownContentIsNotRecognized) {
    AcrBackend backend(Brand::kLg, Country::kUk, library);
    fp::ContentInfo unknown;
    unknown.seed = 123456789;
    unknown.dynamics = fp::ContentDynamics::for_kind(fp::ContentKind::kHdmiDesktop);
    const fp::ContentStream stream(unknown.seed, unknown.dynamics);

    fp::FingerprintBatch batch;
    batch.device_id = 78;
    batch.capture_period_ms = 10;
    for (int i = 0; i < 100; ++i) {
        fp::CaptureRecord record;
        record.offset_ms = static_cast<std::uint32_t>(i * 10);
        record.video = fp::dhash(stream.frame_at(SimTime::millis(i * 10)));
        batch.records.push_back(record);
    }
    AcrRequest request;
    request.type = AcrMessageType::kFingerprintBatch;
    request.body = batch.serialize(fp::BatchEncoding::kCompactRle);

    const auto response = AcrResponse::deserialize(backend.handle(request.serialize()));
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response.value().recognized);
    EXPECT_EQ(backend.batches_matched(), 0U);
    EXPECT_EQ(backend.profiler().profile(78), nullptr);
}

TEST_F(BackendFixture, ResponseSizesFollowCalibration) {
    AcrBackend backend(Brand::kSamsung, Country::kUk, library);
    const auto calibration = acr_calibration(Brand::kSamsung, Country::kUk);

    AcrRequest heartbeat;
    heartbeat.type = AcrMessageType::kHeartbeat;
    heartbeat.body = Bytes(10, 0);
    EXPECT_EQ(backend.handle(heartbeat.serialize()).size(),
              17U + calibration.heartbeat_response);

    AcrRequest config;
    config.type = AcrMessageType::kConfigFetch;
    config.body = Bytes(10, 0);
    EXPECT_EQ(backend.handle(config.serialize()).size(), 17U + calibration.config_response);
    EXPECT_EQ(backend.heartbeats(), 1U);
}

TEST_F(BackendFixture, MalformedRequestGetsTerseError) {
    AcrBackend backend(Brand::kLg, Country::kUk, library);
    const Bytes junk = {0xFF, 0xFF, 0xFF};
    const Bytes response = backend.handle(junk);
    EXPECT_EQ(response.size(), 17U + 32U);
    EXPECT_EQ(backend.batches_received(), 0U);
}

// ------------------------------------------------------------ SmartTv model

struct TvFixture : ::testing::Test {
    sim::Simulator simulator;
    sim::Cloud cloud{simulator, 11};
    sim::AccessPoint ap{simulator, net::MacAddress::local(0xA1), net::Ipv4Address(192, 168, 4, 1),
                        sim::LatencyModel{SimTime::millis(2), SimTime::micros(200)}, 12};
    fp::ContentLibrary library;
    std::unique_ptr<AcrBackend> backend;
    std::unique_ptr<SmartTv> tv;
    std::vector<net::Packet> capture;

    void SetUp() override { build(Brand::kSamsung, Country::kUk); }

    void build(Brand brand, Country country) {
        capture.clear();
        ap.set_cloud(cloud);
        ap.set_tap([this](const net::Packet& packet) { capture.push_back(packet); });
        cloud.enable_dns(net::Ipv4Address(9, 9, 9, 9));
        for (const auto& info : fp::builtin_catalog(31)) library.add(info);
        backend = std::make_unique<AcrBackend>(brand, country, library);

        // Register every platform domain in the zone so boot resolution works.
        const auto profile = platform_profile(brand, country);
        std::uint8_t octet = 1;
        for (const auto& name : profile.boot_domains(7)) {
            cloud.zone().add_a(name, net::Ipv4Address(23, 1, octet++, 10));
        }
        cloud.zone().add_a(kOttCdnDomain, net::Ipv4Address(23, 1, 200, 10));

        SmartTv::Config config;
        config.brand = brand;
        config.country = country;
        config.seed = 5;
        tv = std::make_unique<SmartTv>(simulator, ap, cloud, *backend, library, config);
    }
};

TEST_F(TvFixture, PowerOnTriggersDnsBurst) {
    tv->power_on();
    simulator.run_until(SimTime::seconds(10));
    EXPECT_TRUE(tv->is_on());
    // The burst resolves ACR + platform domains within seconds.
    int dns_queries = 0;
    for (const auto& raw : capture) {
        const auto parsed = net::parse_packet(raw);
        if (parsed.ok() && parsed.value().udp &&
            parsed.value().udp->destination_port == dns::kDnsPort) {
            ++dns_queries;
        }
    }
    const auto expected = platform_profile(Brand::kSamsung, Country::kUk);
    EXPECT_GE(dns_queries,
              static_cast<int>(expected.acr_domains.size() + expected.other_domains.size()));
}

TEST_F(TvFixture, OptedOutTvResolvesNoAcrDomains) {
    tv->opt_out_all();
    tv->power_on();
    simulator.run_until(SimTime::seconds(30));
    // Check the raw DNS payloads: no query for an "acr" name may appear.
    bool saw_acr_query = false;
    for (const auto& raw : capture) {
        const auto parsed = net::parse_packet(raw);
        if (!parsed.ok() || !parsed.value().udp) continue;
        const auto message = dns::DnsMessage::decode(parsed.value().payload);
        if (!message.ok() || message.value().questions.empty()) continue;
        const auto name = message.value().questions.front().name.to_string();
        if (name.find("acr") != std::string::npos) saw_acr_query = true;
    }
    EXPECT_FALSE(saw_acr_query);
    EXPECT_FALSE(tv->acr().running());
}

TEST_F(TvFixture, PowerOffSilencesStation) {
    tv->power_on();
    simulator.run_until(SimTime::seconds(20));
    tv->power_off();
    const std::size_t frames_at_off = capture.size();
    simulator.run_until(SimTime::minutes(3));
    // Nothing new after power-off (in-flight events are dropped offline).
    EXPECT_EQ(capture.size(), frames_at_off);
    EXPECT_FALSE(tv->is_on());
}

TEST_F(TvFixture, ScreenFollowsScenario) {
    tv->power_on();
    simulator.run_until(SimTime::seconds(5));

    tv->set_scenario(Scenario::kLinear);
    const auto linear = tv->screen_at(SimTime::minutes(2));
    ASSERT_TRUE(linear.has_value());

    tv->set_scenario(Scenario::kHdmi);
    const auto hdmi = tv->screen_at(SimTime::minutes(2));
    ASSERT_TRUE(hdmi.has_value());
    EXPECT_NE(fp::dhash(linear->frame), fp::dhash(hdmi->frame));

    tv->power_off();
    EXPECT_FALSE(tv->screen_at(SimTime::minutes(2)).has_value());
}

TEST_F(TvFixture, AcrClientUploadsWhenActive) {
    tv->set_scenario(Scenario::kLinear);
    tv->power_on();
    simulator.run_until(SimTime::minutes(4));
    EXPECT_TRUE(tv->acr().running());
    EXPECT_EQ(tv->acr().mode(), AcrMode::kActive);
    EXPECT_GE(tv->acr().batches_uploaded(), 2U);
    EXPECT_GT(tv->acr().captures_taken(), 100U);
    EXPECT_GE(backend->batches_received(), 2U);
    EXPECT_GE(backend->batches_matched(), 1U);
}

TEST_F(TvFixture, MidRunOptOutStopsAcr) {
    tv->set_scenario(Scenario::kLinear);
    tv->power_on();
    simulator.run_until(SimTime::minutes(3));
    ASSERT_TRUE(tv->acr().running());
    const auto uploads_before = tv->acr().batches_uploaded();

    tv->opt_out_all();
    EXPECT_FALSE(tv->acr().running());
    simulator.run_until(SimTime::minutes(8));
    EXPECT_EQ(tv->acr().batches_uploaded(), uploads_before);

    // Opting back in restarts the client.
    tv->opt_in_all();
    EXPECT_TRUE(tv->acr().running());
    simulator.run_until(SimTime::minutes(11));
    EXPECT_GT(tv->acr().batches_uploaded(), uploads_before);
}

TEST_F(TvFixture, LoginStatusDoesNotChangeAcrBehaviour) {
    tv->set_scenario(Scenario::kLinear);
    tv->login();
    tv->power_on();
    simulator.run_until(SimTime::minutes(3));
    const auto uploads_logged_in = tv->acr().batches_uploaded();
    tv->logout();  // paper §4.2: login status has no material impact
    simulator.run_until(SimTime::minutes(6));
    EXPECT_GT(tv->acr().batches_uploaded(), uploads_logged_in);
    EXPECT_TRUE(tv->acr().running());
}

TEST_F(TvFixture, ChannelZappingChangesScreenContent) {
    tv->set_scenario(Scenario::kLinear);
    tv->power_on();
    simulator.run_until(SimTime::seconds(5));

    EXPECT_EQ(tv->current_channel(), 0);
    const auto before = tv->screen_at(SimTime::minutes(2));
    tv->next_channel();
    EXPECT_EQ(tv->current_channel(), 1);
    const auto after = tv->screen_at(SimTime::minutes(2));
    ASSERT_TRUE(before.has_value());
    ASSERT_TRUE(after.has_value());
    EXPECT_NE(fp::dhash(before->frame), fp::dhash(after->frame));

    // The lineup wraps.
    tv->next_channel();
    tv->next_channel();
    EXPECT_EQ(tv->current_channel(), 0);
    const auto wrapped = tv->screen_at(SimTime::minutes(2));
    EXPECT_EQ(fp::dhash(before->frame), fp::dhash(wrapped->frame));
}

TEST_F(TvFixture, AcrKeepsMatchingAcrossZaps) {
    tv->set_scenario(Scenario::kLinear);
    tv->power_on();
    for (int minute = 1; minute <= 5; ++minute) {
        simulator.run_until(SimTime::minutes(minute));
        tv->next_channel();
    }
    simulator.run_until(SimTime::minutes(7));
    EXPECT_GE(backend->batches_received(), 4U);
    // Zapping mid-batch can cost an occasional match, but most batches are
    // dominated by one channel and resolve.
    EXPECT_GE(backend->batches_matched() * 3, backend->batches_received() * 2);
}

TEST_F(TvFixture, DeviceIdentifiersAreStable) {
    EXPECT_NE(tv->device_id(), 0U);
    EXPECT_NE(tv->advertising_id(), 0U);
    EXPECT_NE(tv->device_id(), tv->advertising_id());
}

}  // namespace
}  // namespace tvacr::tv
