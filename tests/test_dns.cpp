// Tests for the DNS substrate: name codec (incl. compression), message
// codec, and the authoritative zone/resolver.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "dns/name.hpp"
#include "dns/zone.hpp"

namespace tvacr::dns {
namespace {

// -------------------------------------------------------------------- names

TEST(DomainNameTest, ParseNormalizesCase) {
    const auto name = DomainName::parse("ACR-EU-PRD.SamsungCloud.TV");
    ASSERT_TRUE(name.ok());
    EXPECT_EQ(name.value().to_string(), "acr-eu-prd.samsungcloud.tv");
    EXPECT_EQ(name.value().labels().size(), 3U);
}

TEST(DomainNameTest, RootAndTrailingDot) {
    EXPECT_TRUE(DomainName::parse("").value().is_root());
    EXPECT_TRUE(DomainName::parse(".").value().is_root());
    EXPECT_EQ(DomainName::parse("example.com.").value().to_string(), "example.com");
}

TEST(DomainNameTest, RejectsOversizedLabels) {
    EXPECT_FALSE(DomainName::parse(std::string(64, 'a') + ".com").ok());
    EXPECT_FALSE(DomainName::parse("a..b").ok());
    // Total name length > 255.
    std::string big;
    for (int i = 0; i < 50; ++i) big += "abcdef.";
    big += "com";
    EXPECT_FALSE(DomainName::parse(big).ok());
}

TEST(DomainNameTest, SubdomainMatching) {
    const auto parent = DomainName::parse("alphonso.tv").value();
    EXPECT_TRUE(DomainName::parse("eu-acr7.alphonso.tv").value().is_subdomain_of(parent));
    EXPECT_TRUE(parent.is_subdomain_of(parent));
    EXPECT_FALSE(DomainName::parse("alphonso.tv.evil.com").value().is_subdomain_of(parent));
}

TEST(DomainNameTest, ReverseOf) {
    const auto name = DomainName::reverse_of(net::Ipv4Address(203, 0, 113, 7));
    EXPECT_EQ(name.to_string(), "7.113.0.203.in-addr.arpa");
}

TEST(NameCodecTest, UncompressedRoundTrip) {
    const auto name = DomainName::parse("log-config.samsungacr.com").value();
    ByteWriter w;
    encode_name_uncompressed(name, w);
    ByteReader r(w.view());
    const auto decoded = decode_name(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), name);
    EXPECT_TRUE(r.at_end());
}

TEST(NameCodecTest, CompressionReusesSuffixes) {
    const auto first = DomainName::parse("a.example.com").value();
    const auto second = DomainName::parse("b.example.com").value();
    ByteWriter w;
    CompressionMap offsets;
    encode_name(first, w, offsets);
    const std::size_t first_size = w.size();
    encode_name(second, w, offsets);
    // Second name needs only "b" + a 2-byte pointer: 1+1+2 = 4 bytes.
    EXPECT_EQ(w.size() - first_size, 4U);

    ByteReader r(w.view());
    EXPECT_EQ(decode_name(r).value(), first);
    EXPECT_EQ(decode_name(r).value(), second);
}

TEST(NameCodecTest, RejectsPointerLoops) {
    // A name that points at itself: 0xC000 at offset 0.
    const Bytes evil = {0xC0, 0x00};
    ByteReader r(evil);
    EXPECT_FALSE(decode_name(r).ok());
}

TEST(NameCodecTest, RejectsTruncatedLabel) {
    const Bytes truncated = {0x05, 'a', 'b'};
    ByteReader r(truncated);
    EXPECT_FALSE(decode_name(r).ok());
}

TEST(NameCodecTest, PointerTargetAtWindowEdgeCompressesAndDecodes) {
    // 0x3FFF is the last offset a 14-bit compression pointer can address.
    // A name starting exactly there is still compressible; its deeper
    // suffixes (past the window) must not be recorded as pointer targets.
    const auto name = DomainName::parse("edge.example.com").value();
    ByteWriter w;
    const Bytes padding(0x3FFF, 0);
    w.raw(BytesView(padding.data(), padding.size()));
    CompressionMap offsets;
    encode_name(name, w, offsets);
    ASSERT_EQ(offsets.count("edge.example.com"), 1U);
    EXPECT_EQ(offsets.at("edge.example.com"), 0x3FFF);
    // "example.com" / "com" start past 0x3FFF: not pointer-addressable.
    EXPECT_EQ(offsets.count("example.com"), 0U);
    EXPECT_EQ(offsets.count("com"), 0U);

    const std::size_t second_at = w.size();
    encode_name(name, w, offsets);
    EXPECT_EQ(w.size() - second_at, 2U);  // the 0xFFFF pointer, nothing else

    ByteReader r(w.view());
    ASSERT_TRUE(r.seek(second_at).ok());
    const auto decoded = decode_name(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), name);
}

TEST(NameCodecTest, SuffixPastPointerWindowFallsBackUncompressed) {
    // Everything past 0x3FFF is unaddressable: encoding the same name twice
    // out there must produce two full (identical-size) encodings, not a
    // pointer to an offset the wire format cannot express.
    const auto name = DomainName::parse("far.example.com").value();
    ByteWriter w;
    const Bytes padding(0x4000, 0);
    w.raw(BytesView(padding.data(), padding.size()));
    CompressionMap offsets;
    encode_name(name, w, offsets);
    const std::size_t first_size = w.size() - 0x4000;
    EXPECT_TRUE(offsets.empty());
    const std::size_t second_at = w.size();
    encode_name(name, w, offsets);
    EXPECT_EQ(w.size() - second_at, first_size);  // full re-encoding

    ByteReader r(w.view());
    ASSERT_TRUE(r.seek(0x4000).ok());
    EXPECT_EQ(decode_name(r).value(), name);
    EXPECT_EQ(decode_name(r).value(), name);
}

TEST(NameCodecTest, RejectsForwardPointer) {
    // Pointers may only refer to *prior* data (RFC 1035 §4.1.4); a pointer
    // at offset 0 aiming past itself must be rejected, not chased.
    const Bytes forward = {0xC0, 0x10, 0x01, 'a', 0x00};
    ByteReader r(forward);
    EXPECT_FALSE(decode_name(r).ok());
}

TEST(NameCodecTest, PointerChainsHonourHopLimit) {
    // A chain of backward pointers: each one points at the previous, the
    // first at a real label. Short chains decode; 17 hops trip the limit.
    ByteWriter w;
    w.u8(1);
    w.raw(std::string_view("a"));
    w.u8(0);  // "a." at offset 0, 3 bytes
    for (int i = 0; i < 17; ++i) {
        const std::size_t target = i == 0 ? 0 : 3 + 2 * static_cast<std::size_t>(i - 1);
        w.u16(static_cast<std::uint16_t>(0xC000 | target));
    }
    {
        ByteReader r(w.view());
        ASSERT_TRUE(r.seek(3 + 2 * 4).ok());  // 5 hops: within the limit
        const auto decoded = decode_name(r);
        ASSERT_TRUE(decoded.ok());
        EXPECT_EQ(decoded.value().to_string(), "a");
    }
    {
        ByteReader r(w.view());
        ASSERT_TRUE(r.seek(3 + 2 * 16).ok());  // 17 hops: one too many
        EXPECT_FALSE(decode_name(r).ok());
    }
}

// --------------------------------------------------------------- name cache

/// Decodes the name at `offset` twice — once without a cache, once with
/// `cache` — and requires identical outcomes: same ok/error, same error
/// message, same name, and the reader parked at the same position.
void expect_cache_transparent(BytesView wire, std::size_t offset, NameCache& cache) {
    ByteReader plain(wire);
    ByteReader cached(wire);
    ASSERT_TRUE(plain.seek(offset).ok());
    ASSERT_TRUE(cached.seek(offset).ok());
    const auto a = decode_name(plain);
    const auto b = decode_name(cached, &cache);
    ASSERT_EQ(a.ok(), b.ok()) << "offset " << offset;
    if (!a.ok()) {
        EXPECT_EQ(a.error().message, b.error().message);
        return;
    }
    EXPECT_EQ(a.value(), b.value());
    EXPECT_EQ(plain.position(), cached.position());
}

TEST(NameCacheTest, ColdAndWarmDecodesMatchUncachedAtEveryOffset) {
    // A message-like arena: a base name, a prefixed pointer, a bare pointer
    // chain, and a two-label prefix — the shapes DnsMessage::decode meets.
    ByteWriter w;
    w.u8(7);
    w.raw(std::string_view("example"));
    w.u8(3);
    w.raw(std::string_view("com"));
    w.u8(0);  // offset 0: "example.com", 13 bytes
    w.u8(3);
    w.raw(std::string_view("www"));
    w.u16(0xC000);  // offset 13: "www" -> ptr(0), 6 bytes
    w.u16(0xC000 | 13);  // offset 19: bare pointer to offset 13
    w.u8(1);
    w.raw(std::string_view("a"));
    w.u8(1);
    w.raw(std::string_view("b"));
    w.u16(0xC000 | 13);  // offset 21: "a.b" -> ptr(13)

    NameCache cache;
    // Two passes: the first fills the cache (cold), the second must return
    // memoized results that are still indistinguishable from fresh decodes.
    for (int pass = 0; pass < 2; ++pass) {
        for (const std::size_t offset : {0U, 13U, 19U, 21U}) {
            expect_cache_transparent(w.view(), offset, cache);
        }
    }
}

TEST(NameCacheTest, SpliceReplaysHopLimit) {
    // "a." at 0, then a 17-deep pointer chain. A cold decode at hop depth 16
    // succeeds and memoizes; the depth-17 decode must fail with the same
    // error whether it walks the chain or splices a memoized tail.
    ByteWriter w;
    w.u8(1);
    w.raw(std::string_view("a"));
    w.u8(0);
    for (int i = 0; i < 17; ++i) {
        const std::size_t target = i == 0 ? 0 : 3 + 2 * static_cast<std::size_t>(i - 1);
        w.u16(static_cast<std::uint16_t>(0xC000 | target));
    }
    NameCache cache;
    expect_cache_transparent(w.view(), 3 + 2 * 15, cache);  // 16 hops: fine, warms cache
    expect_cache_transparent(w.view(), 3 + 2 * 16, cache);  // 17 hops: same error spliced
}

TEST(NameCacheTest, SpliceReplaysOctetLimit) {
    // Base name of two 63-octet labels (129 octets with length bytes); a
    // prefix of two more such labels plus a pointer pushes the assembled
    // name past 255 octets. The octet check must fire identically when the
    // tail is spliced from the cache instead of re-walked.
    const std::string big(63, 'x');
    ByteWriter w;
    w.u8(63);
    w.raw(std::string_view(big));
    w.u8(63);
    w.raw(std::string_view(big));
    w.u8(0);  // offset 0: 129 bytes
    const std::size_t prefix_at = 129;
    w.u8(63);
    w.raw(std::string_view(big));
    w.u8(63);
    w.raw(std::string_view(big));
    w.u16(0xC000);  // offset 129: two labels + ptr(0): 257 octets total

    NameCache cache;
    expect_cache_transparent(w.view(), 0, cache);  // warms the tail
    expect_cache_transparent(w.view(), prefix_at, cache);
    // Sanity: the overflow really is the outcome, not just equivalence.
    ByteReader r(w.view());
    ASSERT_TRUE(r.seek(prefix_at).ok());
    NameCache warm;
    ByteReader warmer(w.view());
    (void)decode_name(warmer, &warm);
    const auto spliced = decode_name(r, &warm);
    ASSERT_FALSE(spliced.ok());
    EXPECT_EQ(spliced.error().message, "decode_name: name exceeds 255 octets");
}

TEST(NameCacheTest, InvalidPointersFailIdenticallyWhenWarm) {
    // Forward pointers and self-loops must be rejected before any cache
    // lookup, so a warm cache cannot resurrect an invalid wire name.
    ByteWriter w;
    w.u8(1);
    w.raw(std::string_view("a"));
    w.u8(0);             // offset 0: "a.", decodes fine
    w.u16(0xC000 | 3);   // offset 3: points at itself
    w.u16(0xC000 | 9);   // offset 5: forward pointer
    NameCache cache;
    expect_cache_transparent(w.view(), 0, cache);
    expect_cache_transparent(w.view(), 3, cache);
    expect_cache_transparent(w.view(), 5, cache);
}

// ----------------------------------------------------------------- messages

TEST(DnsMessageTest, QueryRoundTrip) {
    const auto name = DomainName::parse("acr0.samsungcloudsolution.com").value();
    const DnsMessage query = make_query(0x1234, name, RecordType::kA);
    const auto decoded = DnsMessage::decode(query.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), query);
    EXPECT_FALSE(decoded.value().is_response);
    EXPECT_TRUE(decoded.value().recursion_desired);
}

TEST(DnsMessageTest, ResponseWithAllRecordTypesRoundTrips) {
    const auto name = DomainName::parse("svc.example.com").value();
    DnsMessage query = make_query(7, name, RecordType::kA);
    std::vector<ResourceRecord> answers;
    answers.push_back(ResourceRecord::cname(name, DomainName::parse("edge.example.net").value()));
    answers.push_back(ResourceRecord::a(DomainName::parse("edge.example.net").value(),
                                        net::Ipv4Address(198, 51, 100, 7), 60));
    DnsMessage response = make_response(query, answers, ResponseCode::kNoError);
    response.additionals.push_back(
        ResourceRecord::txt(DomainName::parse("meta.example.com").value(), "v=1"));
    response.authorities.push_back(ResourceRecord::ptr(
        DomainName::reverse_of(net::Ipv4Address(198, 51, 100, 7)),
        DomainName::parse("edge.example.net").value()));

    const auto decoded = DnsMessage::decode(response.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), response);
}

TEST(DnsMessageTest, CompressionShrinksRepeatedNames) {
    const auto name = DomainName::parse("very-long-subdomain.acr-service.example.com").value();
    DnsMessage query = make_query(1, name, RecordType::kA);
    DnsMessage response = make_response(
        query, {ResourceRecord::a(name, net::Ipv4Address(1, 2, 3, 4))}, ResponseCode::kNoError);
    const Bytes wire = response.encode();
    // The answer's name must be a 2-byte pointer, not a repeat of the
    // 44-byte name.
    ByteWriter uncompressed_estimate;
    encode_name_uncompressed(name, uncompressed_estimate);
    EXPECT_LT(wire.size(), 12 + 2 * uncompressed_estimate.size() + 14);
}

TEST(DnsMessageTest, RejectsTruncatedHeader) {
    const Bytes junk = {0x00, 0x01, 0x00};
    EXPECT_FALSE(DnsMessage::decode(junk).ok());
}

TEST(DnsMessageTest, RcodeSurvivesRoundTrip) {
    const auto name = DomainName::parse("missing.example.com").value();
    const DnsMessage query = make_query(9, name, RecordType::kA);
    const DnsMessage nx = make_response(query, {}, ResponseCode::kNxDomain);
    const auto decoded = DnsMessage::decode(nx.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().rcode, ResponseCode::kNxDomain);
    EXPECT_TRUE(decoded.value().is_response);
}

// --------------------------------------------------------------------- zone

Zone sample_zone() {
    Zone zone;
    zone.add_a("eu-acr7.alphonso.tv", net::Ipv4Address(185, 76, 9, 10));
    zone.add_cname("www.alphonso.tv", "eu-acr7.alphonso.tv");
    zone.add_ptr(net::Ipv4Address(185, 76, 9, 10), "ams-edge-1.alphonso.tv");
    zone.add_txt("alphonso.tv", "acr backend");
    return zone;
}

TEST(ZoneTest, DirectALookup) {
    const Zone zone = sample_zone();
    const auto name = DomainName::parse("eu-acr7.alphonso.tv").value();
    const auto records = zone.lookup(name, RecordType::kA);
    ASSERT_EQ(records.size(), 1U);
    EXPECT_EQ(std::get<net::Ipv4Address>(records[0].rdata), net::Ipv4Address(185, 76, 9, 10));
}

TEST(ZoneTest, CnameChainIsChased) {
    const Zone zone = sample_zone();
    const auto name = DomainName::parse("www.alphonso.tv").value();
    const auto records = zone.lookup(name, RecordType::kA);
    ASSERT_EQ(records.size(), 2U);  // CNAME then A
    EXPECT_EQ(records[0].type, RecordType::kCname);
    EXPECT_EQ(records[1].type, RecordType::kA);
    EXPECT_EQ(zone.resolve_a(name), net::Ipv4Address(185, 76, 9, 10));
}

TEST(ZoneTest, CnameLoopTerminates) {
    Zone zone;
    zone.add_cname("a.example.com", "b.example.com");
    zone.add_cname("b.example.com", "a.example.com");
    const auto records =
        zone.lookup(DomainName::parse("a.example.com").value(), RecordType::kA);
    EXPECT_LE(records.size(), 9U);  // bounded by the chase depth limit
    EXPECT_FALSE(zone.resolve_a(DomainName::parse("a.example.com").value()).has_value());
}

TEST(ZoneTest, AnswerDistinguishesNxdomainFromNodata) {
    const Zone zone = sample_zone();
    const auto nx = zone.answer(
        make_query(1, DomainName::parse("nope.example.com").value(), RecordType::kA));
    EXPECT_EQ(nx.rcode, ResponseCode::kNxDomain);

    const auto nodata =
        zone.answer(make_query(2, DomainName::parse("alphonso.tv").value(), RecordType::kA));
    EXPECT_EQ(nodata.rcode, ResponseCode::kNoError);
    EXPECT_TRUE(nodata.answers.empty());
}

TEST(ZoneTest, AnswerEchoesQuestionAndId) {
    const Zone zone = sample_zone();
    const auto query =
        make_query(0xBEEF, DomainName::parse("eu-acr7.alphonso.tv").value(), RecordType::kA);
    const auto response = zone.answer(query);
    EXPECT_EQ(response.id, 0xBEEF);
    ASSERT_EQ(response.questions.size(), 1U);
    EXPECT_EQ(response.questions[0], query.questions[0]);
    EXPECT_TRUE(response.is_response);
    ASSERT_EQ(response.answers.size(), 1U);
}

TEST(ZoneTest, PtrLookupForReverseDns) {
    const Zone zone = sample_zone();
    const auto reverse = DomainName::reverse_of(net::Ipv4Address(185, 76, 9, 10));
    const auto records = zone.lookup(reverse, RecordType::kPtr);
    ASSERT_EQ(records.size(), 1U);
    EXPECT_EQ(std::get<DomainName>(records[0].rdata).to_string(), "ams-edge-1.alphonso.tv");
}

TEST(ZoneTest, RemoveSupportsDomainRotation) {
    Zone zone = sample_zone();
    const auto old_name = DomainName::parse("eu-acr7.alphonso.tv").value();
    zone.remove(old_name);
    zone.add_a("eu-acr8.alphonso.tv", net::Ipv4Address(185, 76, 9, 11));
    EXPECT_FALSE(zone.resolve_a(old_name).has_value());
    EXPECT_TRUE(zone.resolve_a(DomainName::parse("eu-acr8.alphonso.tv").value()).has_value());
}

TEST(ZoneTest, FormErrOnEmptyQuestion) {
    const Zone zone = sample_zone();
    DnsMessage empty;
    EXPECT_EQ(zone.answer(empty).rcode, ResponseCode::kFormErr);
}

}  // namespace
}  // namespace tvacr::dns
