// Integration tests for the simulator substrate: event ordering, the
// station/AP/cloud topology with capture tap, DNS over the simulated
// internet, TCP exchanges and TLS sessions as seen by the capture.
#include <gtest/gtest.h>

#include <set>

#include "dns/message.hpp"
#include "fault/impairment.hpp"
#include "net/flow.hpp"
#include "sim/access_point.hpp"
#include "sim/cloud.hpp"
#include "sim/dns_client.hpp"
#include "sim/simulator.hpp"
#include "sim/smart_plug.hpp"
#include "sim/station.hpp"
#include "sim/tcp.hpp"
#include "sim/tls.hpp"

namespace tvacr::sim {
namespace {

using net::Ipv4Address;

// ---------------------------------------------------------------- simulator

TEST(SimulatorTest, EventsRunInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.at(SimTime::millis(20), [&]() { order.push_back(2); });
    sim.at(SimTime::millis(10), [&]() { order.push_back(1); });
    sim.at(SimTime::millis(30), [&]() { order.push_back(3); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), SimTime::millis(30));
    EXPECT_EQ(sim.events_processed(), 3U);
}

TEST(SimulatorTest, SameTimeEventsAreFifo) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.at(SimTime::millis(5), [&, i]() { order.push_back(i); });
    }
    sim.run_all();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, SameTimeEventsStayFifoBeyond64kSchedules) {
    // The FIFO tie-break rides on a monotonically growing sequence number;
    // it must not wrap or collide even after far more than 2^16 schedules.
    Simulator sim;
    constexpr int kWarmup = (1 << 16) + 100;
    int warmup_fired = 0;
    for (int i = 0; i < kWarmup; ++i) {
        sim.at(SimTime::millis(1), [&]() { ++warmup_fired; });
    }
    sim.run_all();
    EXPECT_EQ(warmup_fired, kWarmup);

    // Past the 2^16 boundary, same-timestamp events still fire in exact
    // insertion order.
    std::vector<int> order;
    for (int i = 0; i < 1000; ++i) {
        sim.at(sim.now() + SimTime::millis(5), [&, i]() { order.push_back(i); });
    }
    sim.run_all();
    ASSERT_EQ(order.size(), 1000U);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, RunUntilStopsAtLastEventWhenQueueEmptiesEarly) {
    // Documented contract: the clock finishes at min(deadline, last event).
    Simulator sim;
    sim.at(SimTime::seconds(1), []() {});
    sim.at(SimTime::seconds(2), []() {});
    sim.run_until(SimTime::seconds(60));
    EXPECT_EQ(sim.now(), SimTime::seconds(2));  // not fabricated up to 60 s
    EXPECT_EQ(sim.pending_events(), 0U);

    // A later deadline with an empty queue does not move the clock either.
    sim.run_until(SimTime::seconds(90));
    EXPECT_EQ(sim.now(), SimTime::seconds(2));

    // With events beyond the deadline, the clock parks at the deadline.
    sim.at(SimTime::seconds(100), []() {});
    sim.run_until(SimTime::seconds(50));
    EXPECT_EQ(sim.now(), SimTime::seconds(50));
    EXPECT_EQ(sim.pending_events(), 1U);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
    Simulator sim;
    int fired = 0;
    sim.at(SimTime::seconds(1), [&]() { ++fired; });
    sim.at(SimTime::seconds(3), [&]() { ++fired; });
    sim.run_until(SimTime::seconds(2));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), SimTime::seconds(2));
    EXPECT_EQ(sim.pending_events(), 1U);
}

TEST(SimulatorTest, EventsPastDeadlineSurviveToNextRun) {
    // Regression for the deadline contract: run_until *parks* events beyond
    // the deadline, it never drops them. The fault layer leans on this — a
    // retransmission timer armed just before a run_until boundary must still
    // fire once a later run covers its expiry.
    Simulator sim;
    std::vector<int> fired;
    sim.at(SimTime::seconds(1), [&]() { fired.push_back(1); });
    sim.at(SimTime::seconds(10), [&]() { fired.push_back(10); });
    sim.run_until(SimTime::seconds(5));
    EXPECT_EQ(fired, (std::vector<int>{1}));
    EXPECT_EQ(sim.pending_events(), 1U);
    sim.run_until(SimTime::seconds(15));
    EXPECT_EQ(fired, (std::vector<int>{1, 10}));
    EXPECT_EQ(sim.now(), SimTime::seconds(10));  // queue drained before 15 s
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&]() {
        if (++depth < 5) sim.after(SimTime::millis(1), recurse);
    };
    sim.after(SimTime::millis(1), recurse);
    sim.run_all();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(sim.now(), SimTime::millis(5));
}

// ----------------------------------------------------------------- topology

struct Testbed {
    Simulator sim;
    AccessPoint ap{sim, net::MacAddress::local(0xA9), Ipv4Address(192, 168, 4, 1),
                   LatencyModel{SimTime::millis(2), SimTime::micros(300)}, 101};
    Cloud cloud{sim, 202};
    Station tv{sim, "tv", net::MacAddress::local(0x71), Ipv4Address(192, 168, 4, 23)};
    std::vector<net::Packet> capture;

    Testbed() {
        ap.set_cloud(cloud);
        tv.attach(ap);
        cloud.enable_dns(Ipv4Address(9, 9, 9, 9));
        cloud.set_default_route(LatencyModel{SimTime::millis(12), SimTime::millis(2)});
        ap.set_tap([this](const net::Packet& packet) { capture.push_back(packet); });
    }
};

TEST(TopologyTest, DnsQueryIsAnsweredAndCaptured) {
    Testbed bed;
    bed.cloud.zone().add_a("acr-eu-prd.samsungcloud.tv", Ipv4Address(20, 30, 40, 50));

    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
    std::optional<Ipv4Address> answer;
    resolver.resolve("acr-eu-prd.samsungcloud.tv",
                     [&](std::optional<Ipv4Address> address) { answer = address; });
    bed.sim.run_all();

    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(*answer, Ipv4Address(20, 30, 40, 50));
    // Capture holds the query and the response, both UDP port 53.
    ASSERT_EQ(bed.capture.size(), 2U);
    const auto query = net::parse_packet(bed.capture[0]).value();
    const auto response = net::parse_packet(bed.capture[1]).value();
    EXPECT_EQ(query.udp->destination_port, dns::kDnsPort);
    EXPECT_EQ(response.udp->source_port, dns::kDnsPort);
    EXPECT_GT(response.timestamp, query.timestamp);
    const auto decoded = dns::DnsMessage::decode(response.payload);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().answers.size(), 1U);
}

TEST(TopologyTest, DnsCacheSuppressesSecondQuery) {
    Testbed bed;
    bed.cloud.zone().add_a("example.com", Ipv4Address(1, 1, 1, 1));
    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
    int answers = 0;
    resolver.resolve("example.com", [&](auto) { ++answers; });
    bed.sim.run_all();
    resolver.resolve("example.com", [&](auto) { ++answers; });
    bed.sim.run_all();
    EXPECT_EQ(answers, 2);
    EXPECT_EQ(resolver.queries_sent(), 1U);
    EXPECT_EQ(resolver.cache_hits(), 1U);
}

TEST(TopologyTest, UnknownNameResolvesToNullopt) {
    Testbed bed;
    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
    bool called = false;
    std::optional<Ipv4Address> answer = Ipv4Address(9, 9, 9, 9);
    resolver.resolve("nonexistent.example.org", [&](std::optional<Ipv4Address> address) {
        called = true;
        answer = address;
    });
    bed.sim.run_all();
    EXPECT_TRUE(called);
    EXPECT_FALSE(answer.has_value());
}

TEST(TopologyTest, OfflineStationSendsNothing) {
    Testbed bed;
    bed.cloud.zone().add_a("example.com", Ipv4Address(1, 1, 1, 1));
    bed.tv.set_online(false);
    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
    resolver.resolve("example.com", [](auto) {});
    bed.sim.run_until(SimTime::seconds(30));
    EXPECT_TRUE(bed.capture.empty());
    EXPECT_EQ(bed.tv.frames_sent(), 0U);
}

TEST(TopologyTest, CaptureCanBePaused) {
    Testbed bed;
    bed.cloud.zone().add_a("example.com", Ipv4Address(1, 1, 1, 1));
    bed.ap.set_capturing(false);
    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
    bool answered = false;
    resolver.resolve("example.com", [&](auto address) { answered = address.has_value(); });
    bed.sim.run_all();
    EXPECT_TRUE(answered);  // traffic flows
    EXPECT_TRUE(bed.capture.empty());  // but is not recorded
}

TEST(TopologyTest, DnsTotalLossCompletesExactlyOnceAfterBoundedRetries) {
    // Under 100% resolver loss the client must neither hang (run_all
    // terminates) nor complete more than once: bounded retries, then a
    // single failure callback.
    Testbed bed;
    bed.cloud.zone().add_a("example.com", Ipv4Address(1, 1, 1, 1));
    bed.cloud.set_dns_drop_rate(1.0);
    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
    int callbacks = 0;
    std::optional<Ipv4Address> answer = Ipv4Address(9, 9, 9, 9);
    resolver.resolve("example.com", [&](std::optional<Ipv4Address> address) {
        ++callbacks;
        answer = address;
    });
    bed.sim.run_all();
    EXPECT_EQ(callbacks, 1);
    EXPECT_FALSE(answer.has_value());
    // Default policy: 3 attempts, 3s apart — the failure lands at 9s.
    EXPECT_EQ(resolver.queries_sent(), 3U);
    EXPECT_EQ(bed.sim.now(), SimTime::seconds(9));
    const auto& metrics = bed.sim.obs().metrics;
    EXPECT_EQ(metrics.counter_value("dns.queries"), 3U);
    EXPECT_EQ(metrics.counter_value("dns.retries"), 2U);
    EXPECT_EQ(metrics.counter_value("dns.timeouts"), 3U);
    EXPECT_EQ(metrics.counter_value("dns.failures"), 1U);
    EXPECT_EQ(metrics.counter_value("dns.answers"), 0U);
}

TEST(TopologyTest, DnsRecoversAfterLossWithSingleCompletion) {
    // First attempt is dropped; the resolver heals before the retry. The
    // retry must succeed with exactly one callback.
    Testbed bed;
    bed.cloud.zone().add_a("example.com", Ipv4Address(1, 1, 1, 1));
    bed.cloud.set_dns_drop_rate(1.0);
    bed.sim.after(SimTime::seconds(1), [&]() { bed.cloud.set_dns_drop_rate(0.0); });
    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
    int callbacks = 0;
    std::optional<Ipv4Address> answer;
    resolver.resolve("example.com", [&](std::optional<Ipv4Address> address) {
        ++callbacks;
        answer = address;
    });
    bed.sim.run_all();
    EXPECT_EQ(callbacks, 1);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(*answer, Ipv4Address(1, 1, 1, 1));
    const auto& metrics = bed.sim.obs().metrics;
    EXPECT_EQ(metrics.counter_value("dns.queries"), 2U);
    EXPECT_EQ(metrics.counter_value("dns.retries"), 1U);
    EXPECT_EQ(metrics.counter_value("dns.timeouts"), 1U);
    EXPECT_EQ(metrics.counter_value("dns.answers"), 1U);
    EXPECT_EQ(metrics.counter_value("dns.failures"), 0U);
}

TEST(TopologyTest, DnsLateAnswersAfterRetriesNeverDoubleComplete) {
    // The server answers every query, but slower than the retry timeout:
    // every response is a late duplicate arriving after its attempt was
    // already retired (and, for the last ones, after the query completed).
    // None of them may fire the callback a second time.
    Testbed bed;
    bed.cloud.zone().add_a("example.com", Ipv4Address(1, 1, 1, 1));
    DnsClient::Config config;
    config.timeout = SimTime::millis(20);  // < the ~28ms simulated RTT
    config.max_attempts = 3;
    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55, config);
    int callbacks = 0;
    std::optional<Ipv4Address> answer = Ipv4Address(9, 9, 9, 9);
    resolver.resolve("example.com", [&](std::optional<Ipv4Address> address) {
        ++callbacks;
        answer = address;
    });
    bed.sim.run_all();
    // All three responses did come back over the wire...
    int dns_responses = 0;
    for (const auto& packet : bed.capture) {
        const auto parsed = net::parse_packet(packet);
        if (parsed && parsed.value().udp &&
            parsed.value().udp->source_port == dns::kDnsPort) {
            ++dns_responses;
        }
    }
    EXPECT_EQ(dns_responses, 3);
    // ...yet each arrived after its attempt was erased: exactly one
    // completion, and it is the timeout-driven failure.
    EXPECT_EQ(callbacks, 1);
    EXPECT_FALSE(answer.has_value());
    const auto& metrics = bed.sim.obs().metrics;
    EXPECT_EQ(metrics.counter_value("dns.timeouts"), 3U);
    EXPECT_EQ(metrics.counter_value("dns.failures"), 1U);
    EXPECT_EQ(metrics.counter_value("dns.answers"), 0U);
}

// ---------------------------------------------------------------------- tcp

TEST(TcpTest, HandshakeExchangeAndCloseProduceExpectedSegments) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    Bytes served_request;
    TcpConnection conn(
        bed.sim, bed.tv, bed.cloud, server,
        [&](BytesView request) -> Bytes {
            served_request.assign(request.begin(), request.end());
            return Bytes(2000, 0xBB);
        });

    bool established = false;
    Bytes response;
    bool closed = false;
    conn.connect([&]() { established = true; });
    conn.exchange(Bytes(3000, 0xAA), [&](Bytes r) {
        response = std::move(r);
        conn.close([&]() { closed = true; });
    });
    bed.sim.run_all();

    EXPECT_TRUE(established);
    EXPECT_TRUE(closed);
    EXPECT_EQ(served_request.size(), 3000U);
    EXPECT_EQ(response.size(), 2000U);
    EXPECT_TRUE(conn.closed());

    // Validate the captured conversation: SYN, SYN-ACK, 3 data segments up
    // (3000 = 1460+1460+80), 2 down, ACKs, FIN exchange.
    net::FlowTable table;
    int syn = 0;
    int fin = 0;
    std::uint64_t up_payload = 0;
    std::uint64_t down_payload = 0;
    for (const auto& raw : bed.capture) {
        const auto packet = net::parse_packet(raw).value();
        ASSERT_TRUE(packet.tcp.has_value());
        table.add(packet);
        if (packet.tcp->has(net::TcpFlags::kSyn)) ++syn;
        if (packet.tcp->has(net::TcpFlags::kFin)) ++fin;
        if (packet.ip->source == bed.tv.ip()) up_payload += packet.payload.size();
        if (packet.ip->destination == bed.tv.ip()) down_payload += packet.payload.size();
    }
    EXPECT_EQ(syn, 2);
    EXPECT_EQ(fin, 2);
    EXPECT_EQ(up_payload, 3000U);
    EXPECT_EQ(down_payload, 2000U);
    EXPECT_EQ(table.flow_count(), 1U);

    // Timestamps are strictly ordered per direction and globally monotone
    // within jitter bounds.
    for (std::size_t i = 1; i < bed.capture.size(); ++i) {
        EXPECT_GE(bed.capture[i].timestamp, bed.capture[i - 1].timestamp);
    }
}

TEST(TcpTest, SequentialExchangesOnOneConnection) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    int served = 0;
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server, [&](BytesView request) -> Bytes {
        ++served;
        return Bytes(request.size() / 2, 0x11);  // half-size echo
    });
    std::vector<std::size_t> responses;
    conn.connect([]() {});
    conn.exchange(Bytes(100, 1), [&](Bytes r) { responses.push_back(r.size()); });
    conn.exchange(Bytes(500, 2), [&](Bytes r) { responses.push_back(r.size()); });
    conn.exchange(Bytes(4000, 3), [&](Bytes r) { responses.push_back(r.size()); });
    bed.sim.run_all();
    EXPECT_EQ(served, 3);
    ASSERT_EQ(responses.size(), 3U);
    EXPECT_EQ(responses[0], 50U);
    EXPECT_EQ(responses[1], 250U);
    EXPECT_EQ(responses[2], 2000U);
}

TEST(TcpTest, SegmentSizesHonourMss) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TcpConnection::Config config;
    config.mss = 1000;
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(1, 0); }, config);
    conn.connect([]() {});
    conn.exchange(Bytes(2500, 0xCC), [](Bytes) {});
    bed.sim.run_all();

    std::vector<std::size_t> up_sizes;
    for (const auto& raw : bed.capture) {
        const auto packet = net::parse_packet(raw).value();
        if (packet.ip->source == bed.tv.ip() && !packet.payload.empty()) {
            up_sizes.push_back(packet.payload.size());
        }
    }
    EXPECT_EQ(up_sizes, (std::vector<std::size_t>{1000, 1000, 500}));
}

TEST(TcpTest, SlowStartRampsFlightSizes) {
    // A large transfer must leave in RTT-spaced flights that grow: the
    // initial window first, then more per ACK round — not one fixed drip.
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(1, 0); });
    conn.connect([]() {});
    conn.exchange(Bytes(60000, 0xAB), [](Bytes) {});
    bed.sim.run_all();

    // Collect uplink data-segment timestamps and group into flights
    // separated by > 5 ms gaps (the path RTT dwarfs intra-flight pacing).
    std::vector<SimTime> sends;
    for (const auto& raw : bed.capture) {
        const auto packet = net::parse_packet(raw).value();
        if (packet.tcp && packet.ip->source == bed.tv.ip() && !packet.payload.empty()) {
            sends.push_back(packet.timestamp);
        }
    }
    ASSERT_GT(sends.size(), 20U);  // 60000/1460 = 42 segments
    std::vector<int> flights;
    for (std::size_t i = 0; i < sends.size(); ++i) {
        if (i == 0 || (sends[i] - sends[i - 1]) > SimTime::millis(5)) flights.push_back(0);
        flights.back() += 1;
    }
    ASSERT_GE(flights.size(), 2U);          // the transfer needed several rounds
    EXPECT_EQ(flights[0], 10);              // IW10 initial flight
    EXPECT_GT(flights[1], flights[0]);      // window grew after the first round
}

TEST(TcpTest, LargeBidirectionalTransferIsByteExact) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    Bytes seen;
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server, [&](BytesView request) {
        seen.assign(request.begin(), request.end());
        Bytes response(77777);
        for (std::size_t i = 0; i < response.size(); ++i) {
            response[i] = static_cast<std::uint8_t>(i * 31);
        }
        return response;
    });
    Bytes request(123456);
    for (std::size_t i = 0; i < request.size(); ++i) {
        request[i] = static_cast<std::uint8_t>(i * 17);
    }
    Bytes response;
    conn.connect([&]() {
        conn.exchange(request, [&](Bytes r) { response = std::move(r); });
    });
    bed.sim.run_all();
    EXPECT_EQ(seen, request);
    ASSERT_EQ(response.size(), 77777U);
    for (std::size_t i = 0; i < response.size(); ++i) {
        ASSERT_EQ(response[i], static_cast<std::uint8_t>(i * 31)) << i;
    }
}

TEST(TcpTest, RecoversFromHeavyDataLoss) {
    // 10% loss on both directions of the data path: the transfer must still
    // complete byte-exact via RTO / fast-retransmit repair.
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    bed.cloud.set_route_loss(server.address, 0.10);

    Bytes seen;
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server, [&](BytesView request) {
        seen.assign(request.begin(), request.end());
        Bytes response(40000);
        for (std::size_t i = 0; i < response.size(); ++i) {
            response[i] = static_cast<std::uint8_t>(i * 11);
        }
        return response;
    });

    Bytes request(30000);
    for (std::size_t i = 0; i < request.size(); ++i) {
        request[i] = static_cast<std::uint8_t>(i * 3);
    }
    Bytes response;
    conn.connect([&]() {
        conn.exchange(request, [&](Bytes r) { response = std::move(r); });
    });
    bed.sim.run_all();

    EXPECT_EQ(seen, request);
    ASSERT_EQ(response.size(), 40000U);
    for (std::size_t i = 0; i < response.size(); ++i) {
        ASSERT_EQ(response[i], static_cast<std::uint8_t>(i * 11)) << i;
    }
    EXPECT_GT(conn.retransmitted_segments(), 0U);
    EXPECT_GT(bed.cloud.data_segments_dropped(), 0U);
}

TEST(TcpTest, TailLossRepairedByTimeout) {
    // Losing the *final* segment produces no duplicate ACKs — only the RTO
    // can repair it. Use a single-segment response so the tail is all there
    // is, with a loss rate high enough to hit it.
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    bed.cloud.set_route_loss(server.address, 0.45);

    int completed = 0;
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(100, 0x5A); });
    conn.connect([&]() {
        for (int i = 0; i < 10; ++i) {
            conn.exchange(Bytes(100, 0x11), [&](Bytes r) {
                if (r.size() == 100) ++completed;
            });
        }
    });
    bed.sim.run_all();
    EXPECT_EQ(completed, 10);
    EXPECT_GT(conn.retransmitted_segments(), 0U);
}

TEST(TcpTest, NoLossMeansNoRetransmissions) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(20000, 0); });
    conn.connect([]() {});
    conn.exchange(Bytes(20000, 1), [](Bytes) {});
    bed.sim.run_all();
    EXPECT_EQ(conn.retransmitted_segments(), 0U);
    EXPECT_EQ(bed.cloud.data_segments_dropped(), 0U);
}

// ------------------------------------------- tcp under adversarial faults
//
// Scripted frame drops through fault::ImpairmentModel pick off *exactly* the
// control segment under test: the model's per-direction frame index counts
// every frame on the link, and these testbeds carry nothing but the one
// connection. Drops happen before the AP capture tap, so the capture shows
// the repair conversation exactly as a real sniffer would — the lost frame
// absent, its byte-identical retransmission present.

TEST(TcpFaultTest, LostSynIsRetransmittedAndConnectionCompletes) {
    Testbed bed;
    fault::FaultSpec spec;
    spec.drop_uplink_frames = {0};  // the original SYN
    fault::ImpairmentModel model(spec, 3, 1);
    bed.ap.set_impairment(&model);

    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(500, 0xBB); });
    bool established = false;
    Bytes response;
    conn.connect([&]() { established = true; });
    conn.exchange(Bytes(700, 0xAA), [&](Bytes r) { response = std::move(r); });
    bed.sim.run_all();

    EXPECT_TRUE(established);
    EXPECT_EQ(response.size(), 500U);
    EXPECT_GT(conn.control_retransmits(), 0U);
    EXPECT_EQ(model.dropped(), 1U);
    // Only the retransmitted SYN reaches the tap (the original died on the
    // link), and the handshake still parses as one clean flow.
    int syn_up = 0;
    for (const auto& raw : bed.capture) {
        const auto packet = net::parse_packet(raw).value();
        if (packet.tcp->has(net::TcpFlags::kSyn) && packet.ip->source == bed.tv.ip()) ++syn_up;
    }
    EXPECT_EQ(syn_up, 1);
}

TEST(TcpFaultTest, LostSynAckIsReplayedWithoutConsumingSequenceSpace) {
    Testbed bed;
    fault::FaultSpec spec;
    spec.drop_downlink_frames = {0};  // the SYN-ACK
    fault::ImpairmentModel model(spec, 3, 1);
    bed.ap.set_impairment(&model);

    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(500, 0xBB); });
    bool established = false;
    Bytes response;
    conn.connect([&]() { established = true; });
    conn.exchange(Bytes(700, 0xAA), [&](Bytes r) { response = std::move(r); });
    bed.sim.run_all();

    EXPECT_TRUE(established);
    EXPECT_EQ(response.size(), 500U);
    EXPECT_GT(conn.control_retransmits(), 0U);

    // The client's SYN timer fired and resent the SYN; the server answered
    // the duplicate by replaying its SYN-ACK at the recorded ISS. Both SYNs
    // are on the wire with the *same* sequence number — retransmission must
    // never consume fresh sequence space.
    std::vector<std::uint32_t> syn_seqs;
    int syn_ack_down = 0;
    for (const auto& raw : bed.capture) {
        const auto packet = net::parse_packet(raw).value();
        if (!packet.tcp->has(net::TcpFlags::kSyn)) continue;
        if (packet.ip->source == bed.tv.ip()) {
            syn_seqs.push_back(packet.tcp->sequence);
        } else {
            ++syn_ack_down;
        }
    }
    ASSERT_EQ(syn_seqs.size(), 2U);
    EXPECT_EQ(syn_seqs[0], syn_seqs[1]);
    EXPECT_EQ(syn_ack_down, 1);  // the original died before the tap
}

TEST(TcpFaultTest, LostFinIsRetransmittedAndCloseCompletes) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(500, 0xBB); });

    // Installed only once the exchange is done, so the scripted indices
    // count from the close conversation: the next two uplink frames (the
    // final ACK and/or the FIN, depending on emission order) are lost.
    fault::FaultSpec spec;
    spec.drop_uplink_frames = {0, 1};
    fault::ImpairmentModel model(spec, 3, 1);

    bool closed = false;
    conn.connect([&]() {
        conn.exchange(Bytes(700, 0xAA), [&](Bytes) {
            bed.ap.set_impairment(&model);
            conn.close([&]() { closed = true; });
        });
    });
    bed.sim.run_all();

    EXPECT_TRUE(closed);
    EXPECT_TRUE(conn.closed());
    EXPECT_GT(conn.control_retransmits(), 0U);
    EXPECT_EQ(model.dropped(), 2U);
}

TEST(TcpFaultTest, LostCloseRepliesAreRepairedByDuplicateFin) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(500, 0xBB); });

    // Mirror image of the test above: the server's ACK and FIN-ACK die on
    // the downlink, the client's FIN timer fires, and the duplicate FIN is
    // answered with a byte-identical replay.
    fault::FaultSpec spec;
    spec.drop_downlink_frames = {0, 1};
    fault::ImpairmentModel model(spec, 3, 1);

    bool closed = false;
    conn.connect([&]() {
        conn.exchange(Bytes(700, 0xAA), [&](Bytes) {
            bed.ap.set_impairment(&model);
            conn.close([&]() { closed = true; });
        });
    });
    bed.sim.run_all();

    EXPECT_TRUE(closed);
    EXPECT_TRUE(conn.closed());
    EXPECT_GT(conn.control_retransmits(), 0U);

    // Both copies of the client FIN made it to the wire at the same
    // sequence number.
    std::vector<std::uint32_t> fin_seqs;
    for (const auto& raw : bed.capture) {
        const auto packet = net::parse_packet(raw).value();
        if (packet.tcp->has(net::TcpFlags::kFin) && packet.ip->source == bed.tv.ip()) {
            fin_seqs.push_back(packet.tcp->sequence);
        }
    }
    ASSERT_GE(fin_seqs.size(), 2U);
    for (const auto seq : fin_seqs) EXPECT_EQ(seq, fin_seqs[0]);
}

TEST(TcpFaultTest, DuplicateStormDoesNotCorruptTheStream) {
    // 80% frame duplication in both directions: duplicated data must be
    // discarded by the receiver, and duplicated ACKs may at worst trigger a
    // spurious fast retransmit — never corruption or double delivery.
    Testbed bed;
    fault::FaultSpec spec;
    spec.duplicate = 0.8;
    fault::ImpairmentModel model(spec, 11, 1);
    bed.ap.set_impairment(&model);

    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    Bytes seen;
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server, [&](BytesView request) {
        seen.assign(request.begin(), request.end());
        Bytes response(20000);
        for (std::size_t i = 0; i < response.size(); ++i) {
            response[i] = static_cast<std::uint8_t>(i * 11);
        }
        return response;
    });
    Bytes request(15000);
    for (std::size_t i = 0; i < request.size(); ++i) {
        request[i] = static_cast<std::uint8_t>(i * 3);
    }
    int responses = 0;
    Bytes response;
    conn.connect([&]() {
        conn.exchange(request, [&](Bytes r) {
            ++responses;
            response = std::move(r);
        });
    });
    bed.sim.run_all();

    EXPECT_EQ(seen, request);
    EXPECT_EQ(responses, 1);
    ASSERT_EQ(response.size(), 20000U);
    for (std::size_t i = 0; i < response.size(); ++i) {
        ASSERT_EQ(response[i], static_cast<std::uint8_t>(i * 11)) << i;
    }
    EXPECT_GT(model.duplicated(), 0U);
}

TEST(TcpFaultTest, HandshakeGivesUpCleanlyWhenLinkNeverComesBack) {
    // The link is down for the whole run: every SYN dies, the retry budget
    // is spent with full exponential backoff, and the connection reports a
    // clean terminal failure instead of hanging or crashing run_all.
    Testbed bed;
    fault::FaultSpec spec;
    spec.outages.push_back({SimTime{}, SimTime::minutes(10)});
    fault::ImpairmentModel model(spec, 3, 1);
    bed.ap.set_impairment(&model);

    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(1, 0); });
    bool established = false;
    conn.connect([&]() { established = true; });
    bed.sim.run_all();

    EXPECT_FALSE(established);
    EXPECT_TRUE(conn.closed());
    EXPECT_EQ(conn.control_retransmits(), 8U);  // TcpConfig::max_ctrl_retries
    EXPECT_TRUE(bed.capture.empty());           // nothing survived to the tap
}

TEST(TcpFaultTest, RetransmissionTimerSurvivesRunUntilBoundary) {
    // A data segment is lost, arming the RTO; the first run_until deadline
    // falls between the loss and the timer's expiry. The parked timer must
    // fire in the next run and repair the stream (the TCP-level face of
    // SimulatorTest.EventsPastDeadlineSurviveToNextRun).
    Testbed bed;
    fault::FaultSpec spec;
    spec.drop_uplink_frames = {2};  // frames: 0 SYN, 1 handshake ACK, 2 first data
    fault::ImpairmentModel model(spec, 3, 1);
    bed.ap.set_impairment(&model);

    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    Bytes seen;
    TcpConnection conn(bed.sim, bed.tv, bed.cloud, server, [&](BytesView request) {
        seen.assign(request.begin(), request.end());
        return Bytes(200, 0xBB);
    });
    Bytes response;
    conn.connect([&]() {
        conn.exchange(Bytes(1000, 0xAA), [&](Bytes r) { response = std::move(r); });
    });

    // Park the clock before the ~250 ms RTO can fire; the repair must not
    // have happened yet.
    bed.sim.run_until(SimTime::millis(100));
    EXPECT_TRUE(response.empty());
    EXPECT_EQ(conn.retransmitted_segments(), 0U);

    bed.sim.run_all();
    EXPECT_EQ(seen.size(), 1000U);
    EXPECT_EQ(response.size(), 200U);
    EXPECT_GE(conn.retransmitted_segments(), 1U);
}

// ---------------------------------------------------------------------- tls

TEST(TlsTest, HandshakeThenApplicationData) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    Bytes seen_by_app;
    TlsSession session(
        bed.sim, bed.tv, bed.cloud, server,
        [&](BytesView plaintext) -> Bytes {
            seen_by_app.assign(plaintext.begin(), plaintext.end());
            return Bytes(300, 0x42);
        },
        /*seed=*/77);

    bool ready = false;
    Bytes reply;
    session.open([&]() { ready = true; });
    session.send(Bytes(1200, 0x10), [&](Bytes response) { reply = std::move(response); });
    bed.sim.run_all();

    EXPECT_TRUE(ready);
    EXPECT_EQ(seen_by_app.size(), 1200U);
    ASSERT_EQ(reply.size(), 300U);
    EXPECT_EQ(reply[0], 0x42);
}

TEST(TlsTest, WireBytesExceedPlaintextByRecordOverhead) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TlsSession session(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(1, 0); }, 77);
    EXPECT_EQ(session.sealed_size(100), 122U);          // one record
    EXPECT_EQ(session.sealed_size(16384), 16384U + 22U);
    EXPECT_EQ(session.sealed_size(16385), 16385U + 44U);  // two records
    EXPECT_EQ(session.sealed_size(0), 1U + 22U);

    session.open([]() {});
    bed.sim.run_all();
    // The handshake alone moves at least client_hello + server_flight bytes.
    std::uint64_t payload = 0;
    for (const auto& raw : bed.capture) {
        payload += net::parse_packet(raw).value().payload.size();
    }
    EXPECT_GT(payload, 517U + 4300U);
}

TEST(TlsTest, QueuedSendsPairRequestsWithResponses) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TlsSession session(
        bed.sim, bed.tv, bed.cloud, server,
        [](BytesView plaintext) -> Bytes { return Bytes(plaintext.size(), 0x5A); }, 78);
    std::vector<std::size_t> replies;
    session.open([]() {});
    session.send(Bytes(10, 0), [&](Bytes r) { replies.push_back(r.size()); });
    session.send(Bytes(20, 0), [&](Bytes r) { replies.push_back(r.size()); });
    session.send(Bytes(30, 0), [&](Bytes r) { replies.push_back(r.size()); });
    bed.sim.run_all();
    EXPECT_EQ(replies, (std::vector<std::size_t>{10, 20, 30}));
}

TEST(TlsTest, CloseCompletesFinHandshake) {
    Testbed bed;
    const net::Endpoint server{Ipv4Address(20, 30, 40, 50), 443};
    TlsSession session(bed.sim, bed.tv, bed.cloud, server,
                       [](BytesView) { return Bytes(64, 0); }, 91);
    bool closed = false;
    session.open([&]() {
        session.send(Bytes(100, 1), [&](Bytes) { session.close([&]() { closed = true; }); });
    });
    bed.sim.run_all();
    EXPECT_TRUE(closed);
    EXPECT_TRUE(session.closed());
    EXPECT_FALSE(session.ready());
}

TEST(TopologyTest, DnsCacheHonoursTtlExpiry) {
    Testbed bed;
    // Short-TTL record: the second resolve after expiry re-queries.
    const auto name = dns::DomainName::parse("rotating.example.com").value();
    bed.cloud.zone().add(dns::ResourceRecord::a(name, Ipv4Address(1, 2, 3, 4), /*ttl=*/5));
    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);

    resolver.resolve("rotating.example.com", [](auto) {});
    bed.sim.run_all();
    EXPECT_EQ(resolver.queries_sent(), 1U);

    // Within TTL: served from cache.
    bed.sim.at(bed.sim.now() + SimTime::seconds(2), [&]() {
        resolver.resolve("rotating.example.com", [](auto) {});
    });
    bed.sim.run_all();
    EXPECT_EQ(resolver.queries_sent(), 1U);
    EXPECT_EQ(resolver.cache_hits(), 1U);

    // Past TTL: a fresh query goes out.
    bed.sim.at(bed.sim.now() + SimTime::seconds(10), [&]() {
        resolver.resolve("rotating.example.com", [](auto) {});
    });
    bed.sim.run_all();
    EXPECT_EQ(resolver.queries_sent(), 2U);
}

TEST(TopologyTest, NxdomainIsNegativelyCached) {
    Testbed bed;
    DnsClient resolver(bed.sim, bed.tv, bed.cloud.dns_ip(), 55);
    int callbacks = 0;
    for (int i = 0; i < 3; ++i) {
        resolver.resolve("ghost.example.org", [&](std::optional<Ipv4Address> address) {
            EXPECT_FALSE(address.has_value());
            ++callbacks;
        });
        bed.sim.run_all();
    }
    EXPECT_EQ(callbacks, 3);
    EXPECT_EQ(resolver.queries_sent(), 1U);          // first miss hits the wire
    EXPECT_EQ(resolver.negative_cache_hits(), 2U);   // the rest are cached
}

TEST(TopologyTest, PortAllocationSkipsBoundPorts) {
    Testbed bed;
    // Bind a specific port, then allocate until the allocator would collide.
    bed.tv.bind_udp(49153, [](net::Endpoint, Bytes) {});
    std::set<std::uint16_t> seen;
    for (int i = 0; i < 100; ++i) {
        const std::uint16_t port = bed.tv.allocate_port();
        EXPECT_NE(port, 49153);
        EXPECT_TRUE(seen.insert(port).second || true);  // allocator may reuse later
        bed.tv.register_tcp(port, [](const net::ParsedPacket&) {});
    }
}

// --------------------------------------------------------------- smart plug

class FakeTv : public PoweredDevice {
  public:
    void power_on() override { ++ons; }
    void power_off() override { ++offs; }
    int ons = 0;
    int offs = 0;
};

TEST(SmartPlugTest, CycleFiresOnceEachWay) {
    Simulator sim;
    FakeTv tv;
    SmartPlug plug(sim, tv);
    plug.schedule_cycle(SimTime::seconds(1), SimTime::seconds(10));
    EXPECT_FALSE(plug.is_on());
    sim.run_until(SimTime::seconds(5));
    EXPECT_TRUE(plug.is_on());
    sim.run_all();
    EXPECT_FALSE(plug.is_on());
    EXPECT_EQ(tv.ons, 1);
    EXPECT_EQ(tv.offs, 1);
}

TEST(SmartPlugTest, RedundantCommandsAreIdempotent) {
    Simulator sim;
    FakeTv tv;
    SmartPlug plug(sim, tv);
    plug.turn_on();
    plug.turn_on();
    plug.turn_off();
    plug.turn_off();
    EXPECT_EQ(tv.ons, 1);
    EXPECT_EQ(tv.offs, 1);
}

}  // namespace
}  // namespace tvacr::sim
