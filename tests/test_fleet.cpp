// Tests for the dual-TV fleet testbed (paper Figure 2): both devices run
// simultaneously, captures stay per-device, and each brand's behaviour is
// unchanged by the other's presence.
#include <gtest/gtest.h>

#include <set>

#include "core/campaign.hpp"
#include "core/fleet.hpp"
#include "core/validation.hpp"

namespace tvacr::core {
namespace {

FleetSpec quick_fleet(tv::Scenario scenario, tv::Phase phase = tv::Phase::kLInOIn) {
    FleetSpec spec;
    spec.country = tv::Country::kUk;
    spec.scenario = scenario;
    spec.phase = phase;
    spec.duration = SimTime::minutes(5);
    spec.seed = 33;
    return spec;
}

TEST(FleetTest, BothTvsRunConcurrentlyAndUpload) {
    FleetTestbed fleet(quick_fleet(tv::Scenario::kLinear));
    const auto result = fleet.run();

    EXPECT_GT(result.lg.batches_uploaded, 10U);       // 15 s cadence
    EXPECT_GT(result.samsung.batches_uploaded, 2U);   // 60 s cadence
    EXPECT_GT(result.lg.backend_matches, 0U);
    EXPECT_GT(result.samsung.backend_matches, 0U);
    EXPECT_FALSE(result.lg.capture.empty());
    EXPECT_FALSE(result.samsung.capture.empty());
}

TEST(FleetTest, CapturesArePerDevice) {
    FleetTestbed fleet(quick_fleet(tv::Scenario::kLinear));
    const auto result = fleet.run();

    // No frame in the LG capture involves the Samsung TV's address and
    // vice versa — Mon(IoT)r's per-device isolation.
    const auto foreign_frames = [](const ExperimentResult& own,
                                   const net::Ipv4Address& other_ip) {
        int count = 0;
        for (const auto& raw : own.capture) {
            const auto parsed = net::parse_packet(raw);
            if (!parsed.ok() || !parsed.value().ip) continue;
            if (parsed.value().ip->source == other_ip ||
                parsed.value().ip->destination == other_ip) {
                ++count;
            }
        }
        return count;
    };
    EXPECT_EQ(foreign_frames(result.lg, result.samsung.device_ip), 0);
    EXPECT_EQ(foreign_frames(result.samsung, result.lg.device_ip), 0);
    EXPECT_NE(result.lg.device_ip, result.samsung.device_ip);
}

TEST(FleetTest, PerDeviceAnalysisMatchesSoloBehaviour) {
    // The brands' ACR domain sets observed in a fleet run equal what each
    // brand contacts when run alone.
    FleetTestbed fleet(quick_fleet(tv::Scenario::kLinear));
    const auto result = fleet.run();

    const auto domains_of = [](const ExperimentResult& experiment) {
        std::set<std::string> out;
        const auto trace = trace_of(experiment);
        for (const auto& [domain, kb] : trace.kb_per_domain) {
            if (kb > 0) out.insert(domain);
        }
        return out;
    };
    const auto lg_domains = domains_of(result.lg);
    const auto samsung_domains = domains_of(result.samsung);
    EXPECT_EQ(lg_domains.size(), 1U);       // the single Alphonso endpoint
    EXPECT_EQ(samsung_domains.size(), 4U);  // the four UK Samsung endpoints
    for (const auto& domain : lg_domains) {
        EXPECT_NE(domain.find("alphonso"), std::string::npos);
    }
}

TEST(FleetTest, ValidationPassesForBothDevices) {
    FleetTestbed fleet(quick_fleet(tv::Scenario::kFast));
    const auto result = fleet.run();
    const auto lg_report = validate_experiment(result.lg);
    const auto samsung_report = validate_experiment(result.samsung);
    EXPECT_TRUE(lg_report.all_passed()) << lg_report.render();
    EXPECT_TRUE(samsung_report.all_passed()) << samsung_report.render();
}

TEST(FleetTest, OptedOutFleetIsSilent) {
    FleetTestbed fleet(quick_fleet(tv::Scenario::kLinear, tv::Phase::kLOutOOut));
    const auto result = fleet.run();
    EXPECT_EQ(result.lg.batches_uploaded, 0U);
    EXPECT_EQ(result.samsung.batches_uploaded, 0U);
    EXPECT_DOUBLE_EQ(trace_of(result.lg).total_acr_kb, 0.0);
    EXPECT_DOUBLE_EQ(trace_of(result.samsung).total_acr_kb, 0.0);
}

}  // namespace
}  // namespace tvacr::core
