// tvacr::lint — lexer, rule catalogue, suppression and reporter tests.
//
// Two layers: inline sources pin down lexer/rule semantics precisely, and
// the fixture tree under tests/lint_fixtures/ (which mirrors the repo
// layout so path-scoped rules engage) provides one firing and one
// suppressed case per catalogue rule plus a golden JSON report. Regenerate
// the golden with:
//
//   TVACR_UPDATE_GOLDEN=1 ./build/tests/test_lint
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "lint/lexer.hpp"
#include "lint/registry.hpp"
#include "lint/report.hpp"

namespace tvacr::lint {
namespace {

#ifndef TVACR_LINT_FIXTURE_DIR
#define TVACR_LINT_FIXTURE_DIR "tests/lint_fixtures"
#endif
#ifndef TVACR_GOLDEN_DIR
#define TVACR_GOLDEN_DIR "tests/golden"
#endif

// ------------------------------------------------------------------- lexer

std::vector<Token> code_tokens(std::string_view source) {
    std::vector<Token> out;
    for (auto& token : lex(source)) {
        if (token.kind != TokenKind::kComment) out.push_back(std::move(token));
    }
    return out;
}

TEST(LintLexer, ClassifiesBasicTokens) {
    const auto tokens = lex("int x = 42; // trailing\n");
    ASSERT_EQ(tokens.size(), 6u);
    EXPECT_TRUE(tokens[0].is_identifier("int"));
    EXPECT_TRUE(tokens[1].is_identifier("x"));
    EXPECT_TRUE(tokens[2].is_punct("="));
    EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
    EXPECT_TRUE(tokens[4].is_punct(";"));
    EXPECT_EQ(tokens[5].kind, TokenKind::kComment);
    EXPECT_EQ(tokens[5].text, "// trailing");
}

TEST(LintLexer, ScopeResolutionIsOneToken) {
    const auto tokens = lex("a::b : c");
    ASSERT_EQ(tokens.size(), 5u);
    EXPECT_TRUE(tokens[1].is_punct("::"));
    EXPECT_TRUE(tokens[3].is_punct(":"));
}

TEST(LintLexer, RawStringSwallowsTriggerText) {
    const auto tokens = lex(R"src(const char* s = R"x(rand() // not a comment */ )x";)src");
    const auto string_token =
        std::find_if(tokens.begin(), tokens.end(),
                     [](const Token& t) { return t.kind == TokenKind::kString; });
    ASSERT_NE(string_token, tokens.end());
    EXPECT_NE(string_token->text.find("rand()"), std::string::npos);
    for (const auto& token : tokens) {
        EXPECT_NE(token.kind, TokenKind::kComment) << token.text;
        EXPECT_FALSE(token.is_identifier("rand"));
    }
}

TEST(LintLexer, PrefixedRawStringAndLiteral) {
    const auto tokens = lex("auto a = u8R\"(x)\"; auto b = L'q';");
    EXPECT_EQ(std::count_if(tokens.begin(), tokens.end(),
                            [](const Token& t) { return t.kind == TokenKind::kString; }),
              1);
    EXPECT_EQ(std::count_if(tokens.begin(), tokens.end(),
                            [](const Token& t) { return t.kind == TokenKind::kCharLiteral; }),
              1);
}

TEST(LintLexer, LineContinuationMacroIsOnePreprocessorToken) {
    const auto tokens = lex("#define EMIT(x) \\\n    do_emit(x); \\\n    flush()\nint y;");
    ASSERT_GE(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].kind, TokenKind::kPreprocessor);
    EXPECT_NE(tokens[0].text.find("do_emit"), std::string::npos);
    EXPECT_NE(tokens[0].text.find("flush"), std::string::npos);
    EXPECT_TRUE(tokens[1].is_identifier("int"));
    EXPECT_EQ(tokens[1].line, 4u);  // continuation lines still advance the counter
}

TEST(LintLexer, LineCommentContinuesAcrossBackslashNewline) {
    const auto tokens = lex("// part one \\\n   rand() still comment\nint z;");
    ASSERT_GE(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
    EXPECT_NE(tokens[0].text.find("still comment"), std::string::npos);
    EXPECT_TRUE(tokens[1].is_identifier("int"));
}

TEST(LintLexer, CommentLookalikesInsideStringsStayStrings) {
    const auto tokens = lex("const char* a = \"// x\"; const char* b = \"/* y */\";");
    for (const auto& token : tokens) EXPECT_NE(token.kind, TokenKind::kComment);
    EXPECT_EQ(std::count_if(tokens.begin(), tokens.end(),
                            [](const Token& t) { return t.kind == TokenKind::kString; }),
              2);
}

TEST(LintLexer, EscapedQuoteDoesNotEndString) {
    const auto tokens = lex(R"(auto s = "a\"b"; int k;)");
    const auto string_token =
        std::find_if(tokens.begin(), tokens.end(),
                     [](const Token& t) { return t.kind == TokenKind::kString; });
    ASSERT_NE(string_token, tokens.end());
    EXPECT_EQ(string_token->text, "\"a\\\"b\"");
}

TEST(LintLexer, FloatLiteralClassification) {
    EXPECT_TRUE(is_float_literal("1.0"));
    EXPECT_TRUE(is_float_literal(".5f"));
    EXPECT_TRUE(is_float_literal("1e-9"));
    EXPECT_TRUE(is_float_literal("0x1p3"));
    EXPECT_FALSE(is_float_literal("42"));
    EXPECT_FALSE(is_float_literal("0xFF"));
    EXPECT_FALSE(is_float_literal("1'000"));
    const auto tokens = code_tokens("x == 1.0e-3;");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[2].text, "1.0e-3");  // exponent sign glued to the literal
}

TEST(LintLexer, UnterminatedLiteralRecoversAtNewline) {
    const auto tokens = lex("auto s = \"oops\nint next;");
    EXPECT_TRUE(std::any_of(tokens.begin(), tokens.end(),
                            [](const Token& t) { return t.is_identifier("next"); }));
}

// ----------------------------------------------------------------- scoping

TEST(LintScoping, PathUnderMatchesComponentBoundaries) {
    EXPECT_TRUE(path_under("src/analysis/report.cpp", "src/analysis"));
    EXPECT_TRUE(path_under("/root/repo/src/analysis/report.cpp", "src/analysis"));
    EXPECT_TRUE(path_under("src/common/thread_pool.cpp", "common/thread_pool."));
    EXPECT_TRUE(path_under("src/core/matrix_runner.cpp", "core/matrix_runner.cpp"));
    EXPECT_FALSE(path_under("src_backup/analysis/report.cpp", "src"));
    EXPECT_FALSE(path_under("tests/src_analysis.cpp", "src/analysis"));
    EXPECT_FALSE(path_under("src/common/thread_pool_stats.cpp", "common/thread_pool."));
}

// ------------------------------------------------------------------- rules

std::vector<Finding> lint_source(const std::string& path, std::string_view source) {
    return Registry::with_builtin_rules().run_file(path, source);
}

std::map<std::string, int> count_by_rule(const std::vector<Finding>& findings) {
    std::map<std::string, int> counts;
    for (const auto& f : findings) ++counts[f.rule];
    return counts;
}

TEST(LintRules, WallclockFiresOnQualifiedNowAndClockNames) {
    const auto findings = lint_source(
        "src/sim/bad.cpp", "auto t = std::chrono::system_clock::now();\n");
    ASSERT_EQ(findings.size(), 1u);  // clock name + argless now dedupe to one per line
    EXPECT_EQ(findings[0].rule, "no-wallclock");
    EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintRules, WallclockIgnoresSimTimeAccessors) {
    const auto findings = lint_source("src/sim/ok.cpp",
                                      "struct S { SimTime now() const; };\n"
                                      "SimTime f(S& s, S* p) { return p->now(); }\n"
                                      "SimTime g(S& s) { return s.now(); }\n");
    EXPECT_TRUE(findings.empty()) << render_text(findings);
}

TEST(LintRules, WallclockAllowlistCoversProfilingFiles) {
    const std::string source = "#pragma once\nauto e = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(lint_source("src/common/thread_pool.cpp", source).empty());
    EXPECT_TRUE(lint_source("src/common/thread_pool.hpp", source).empty());
    EXPECT_TRUE(lint_source("src/core/matrix_runner.cpp", source).empty());
    EXPECT_EQ(lint_source("src/core/audit.cpp", source).size(), 1u);
}

TEST(LintRules, AmbientRandomFiresOutsideRng) {
    const auto findings =
        lint_source("src/tv/bad.cpp", "int r = std::rand(); std::random_device d;\n");
    EXPECT_EQ(count_by_rule(findings)["no-ambient-random"], 1);  // per (rule, line)
    EXPECT_TRUE(lint_source("src/common/rng.cpp", "std::random_device d;\n").empty());
}

TEST(LintRules, UnorderedIterationScopedToOutputLayers) {
    const std::string source =
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> table;\n"
        "int sum() { int s = 0; for (const auto& [k, v] : table) s += v; return s; }\n";
    const auto in_scope = lint_source("src/analysis/bad.cpp", source);
    ASSERT_EQ(in_scope.size(), 1u);
    EXPECT_EQ(in_scope[0].rule, "no-unordered-iteration-in-output");
    EXPECT_EQ(in_scope[0].line, 3u);
    EXPECT_TRUE(lint_source("src/tv/ok.cpp", source).empty());  // out of scope
}

TEST(LintRules, UnorderedIterationIgnoresOrderedAndLookups) {
    const std::string source =
        "#include <map>\n"
        "std::map<int, int> table;\n"
        "std::unordered_map<int, int> index;\n"
        "int f() { int s = 0; for (const auto& [k, v] : table) s += v;\n"
        "          return s + (index.find(3) != index.end() ? 1 : 0); }\n";
    EXPECT_TRUE(lint_source("src/obs/ok.cpp", source).empty());
}

TEST(LintRules, IostreamInLibScopedToSrc) {
    const std::string source = "#include <cstdio>\nvoid f() { std::printf(\"x\"); }\n";
    ASSERT_EQ(lint_source("src/geo/bad.cpp", source).size(), 1u);
    EXPECT_TRUE(lint_source("tools/cli.cpp", source).empty());
    EXPECT_TRUE(lint_source("bench/bench_x.cpp", source).empty());
    EXPECT_TRUE(lint_source("src/net/ok.cpp",
                            "void f(char* b) { std::snprintf(b, 4, \"x\"); }\n")
                    .empty());
}

TEST(LintRules, RawNewDeleteSkipsDeletedMembers) {
    const auto findings = lint_source("src/core/bad.cpp",
                                      "struct T { T(const T&) = delete; };\n"
                                      "int* leak() { return new int(3); }\n"
                                      "void drop(int* p) { delete p; }\n");
    const auto counts = count_by_rule(findings);
    EXPECT_EQ(counts.at("no-raw-new-delete"), 2);
    for (const auto& f : findings) EXPECT_NE(f.line, 1u);
}

TEST(LintRules, PragmaOnceRequiredOnHeadersOnly) {
    EXPECT_EQ(lint_source("src/x/widget.hpp", "int f();\n").size(), 1u);
    EXPECT_TRUE(lint_source("src/x/widget.hpp", "#pragma once\nint f();\n").empty());
    EXPECT_TRUE(lint_source("src/x/widget.hpp", "#  pragma   once\nint f();\n").empty());
    EXPECT_TRUE(lint_source("src/x/widget.cpp", "int f();\n").empty());
}

TEST(LintRules, FloatEqualityNeedsAFloatLiteral) {
    EXPECT_EQ(lint_source("src/x.cpp", "bool b = x == 0.0;\n").size(), 1u);
    EXPECT_EQ(lint_source("src/x.cpp", "bool b = 1.5 != x;\n").size(), 1u);
    EXPECT_EQ(lint_source("src/x.cpp", "bool b = x == -0.5;\n").size(), 1u);
    EXPECT_TRUE(lint_source("src/x.cpp", "bool b = x == 3;\n").empty());
    EXPECT_TRUE(lint_source("src/x.cpp", "bool b = x == y;\n").empty());
}

// ------------------------------------------------------------ suppressions

TEST(LintSuppressions, InlineAndStandaloneForms) {
    const auto inline_form = lint_source(
        "src/x.cpp",
        "bool b = x == 0.0;  // tvacr-lint: allow(no-float-equality) sentinel\n");
    EXPECT_TRUE(inline_form.empty()) << render_text(inline_form);

    const auto standalone = lint_source(
        "src/x.cpp",
        "// tvacr-lint: allow(no-float-equality) sentinel\nbool b = x == 0.0;\n");
    EXPECT_TRUE(standalone.empty()) << render_text(standalone);
}

TEST(LintSuppressions, UnusedSuppressionIsReported) {
    const auto findings =
        lint_source("src/x.cpp", "// tvacr-lint: allow(no-wallclock) stale\nint x = 1;\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kUnusedSuppressionRule);
    EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintSuppressions, MalformedAndUnknownRuleAreReported) {
    const auto counts = count_by_rule(lint_source(
        "src/x.cpp",
        "// tvacr-lint: allow(not-a-rule) reason\n"
        "// tvacr-lint: allow(no-wallclock)\n"
        "// tvacr-lint: something else\n"
        "int x = 1;\n"));
    EXPECT_EQ(counts.at(kMalformedSuppressionRule), 3);
}

TEST(LintSuppressions, SuppressionOnlyCoversItsOwnRule) {
    const auto findings = lint_source(
        "src/x.cpp",
        "bool b = x == 0.0;  // tvacr-lint: allow(no-wallclock) wrong rule\n");
    const auto counts = count_by_rule(findings);
    EXPECT_EQ(counts.at("no-float-equality"), 1);
    EXPECT_EQ(counts.at(kUnusedSuppressionRule), 1);
}

TEST(LintSuppressions, DocCommentsMentioningMarkerAreNotSuppressions) {
    const auto findings = lint_source(
        "src/x.cpp", "// usage:  // tvacr-lint: allow(<rule>) <reason>\nint x = 1;\n");
    EXPECT_TRUE(findings.empty()) << render_text(findings);
}

// ---------------------------------------------------------------- fixtures

std::string fixture_root() { return TVACR_LINT_FIXTURE_DIR; }

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

/// Lints one fixture, keyed by its path relative to the fixture root (which
/// mirrors the repo layout so scoped rules engage).
std::vector<Finding> lint_fixture(const std::string& relative) {
    return Registry::with_builtin_rules().run_file(relative,
                                                   read_file(fixture_root() + "/" + relative));
}

TEST(LintFixtures, FiringFixturesFireExactlyTheirRule) {
    const std::map<std::string, std::pair<std::string, int>> expected = {
        {"src/wallclock_firing.cpp", {"no-wallclock", 4}},
        {"src/ambient_random_firing.cpp", {"no-ambient-random", 4}},
        {"src/analysis/unordered_firing.cpp", {"no-unordered-iteration-in-output", 2}},
        {"src/iostream_firing.cpp", {"no-iostream-in-lib", 3}},
        {"src/raw_new_firing.cpp", {"no-raw-new-delete", 2}},
        {"src/missing_pragma_once.h", {"pragma-once-required", 1}},
        {"src/float_eq_firing.cpp", {"no-float-equality", 3}},
        {"src/unused_suppression.cpp", {kUnusedSuppressionRule, 1}},
        {"src/malformed_suppression.cpp", {kMalformedSuppressionRule, 3}},
    };
    for (const auto& [relative, rule_and_count] : expected) {
        const auto findings = lint_fixture(relative);
        const auto counts = count_by_rule(findings);
        EXPECT_EQ(counts.size(), 1u) << relative << "\n" << render_text(findings);
        ASSERT_TRUE(counts.count(rule_and_count.first) > 0)
            << relative << " expected " << rule_and_count.first;
        EXPECT_EQ(counts.at(rule_and_count.first), rule_and_count.second) << relative;
    }
}

TEST(LintFixtures, SuppressedAndCleanFixturesAreSilent) {
    const std::vector<std::string> silent = {
        "src/wallclock_suppressed.cpp",  "src/wallclock_clean.cpp",
        "src/common/thread_pool.cpp",    "src/common/rng.cpp",
        "src/ambient_random_suppressed.cpp",
        "src/analysis/unordered_suppressed.cpp",
        "src/analysis/unordered_clean.cpp",
        "src/tv/unordered_out_of_scope.cpp",
        "src/iostream_suppressed.cpp",   "src/raw_new_suppressed.cpp",
        "src/raw_new_clean.cpp",         "src/pragma_once_suppressed.h",
        "src/float_eq_suppressed.cpp",   "src/clean.cpp",
        "src/clean_header.hpp",
    };
    for (const auto& relative : silent) {
        const auto findings = lint_fixture(relative);
        EXPECT_TRUE(findings.empty()) << relative << "\n" << render_text(findings);
    }
}

// ------------------------------------------------------------------ report

std::vector<std::pair<std::string, std::string>> all_fixture_sources() {
    std::vector<std::string> relatives;
    const std::filesystem::path root(fixture_root());
    for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
        if (entry.is_regular_file()) {
            relatives.push_back(entry.path().lexically_relative(root).generic_string());
        }
    }
    std::sort(relatives.begin(), relatives.end());
    std::vector<std::pair<std::string, std::string>> sources;
    sources.reserve(relatives.size());
    for (const auto& relative : relatives) {
        sources.emplace_back(relative, read_file(fixture_root() + "/" + relative));
    }
    return sources;
}

TEST(LintReport, TextAndJsonAreStableAcrossInputOrder) {
    auto sources = all_fixture_sources();
    const auto registry = Registry::with_builtin_rules();
    const auto forward = registry.run_files(sources);
    std::reverse(sources.begin(), sources.end());
    const auto reversed = registry.run_files(sources);
    EXPECT_EQ(render_text(forward), render_text(reversed));
    EXPECT_EQ(render_json(forward), render_json(reversed));
}

TEST(LintReport, JsonEscapesAndCounts) {
    const std::vector<Finding> findings = {
        {"src/a \"b\".cpp", 3, "no-wallclock", "line\nbreak"},
        {"src/a.cpp", 1, "no-wallclock", "plain"},
    };
    const std::string json = render_json(findings);
    EXPECT_NE(json.find("\\\"b\\\""), std::string::npos);
    EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
    EXPECT_NE(json.find("\"no-wallclock\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"finding_count\": 2"), std::string::npos);
    // Sorted: src/a.cpp before the quoted path ('"' < 'a' is false — verify
    // actual order is lexicographic on the raw path bytes).
    EXPECT_LT(json.find("src/a \\\"b\\\".cpp"), json.find("src/a.cpp"));
}

/// Golden regression: the JSON report over the whole fixture tree is
/// byte-stable. TVACR_UPDATE_GOLDEN=1 regenerates tests/golden/lint_report.json.
TEST(LintReport, GoldenJsonReport) {
    const auto registry = Registry::with_builtin_rules();
    const std::string json = render_json(registry.run_files(all_fixture_sources()));
    const std::string golden_path = std::string(TVACR_GOLDEN_DIR) + "/lint_report.json";
    if (std::getenv("TVACR_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(golden_path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << golden_path;
        out << json;
        GTEST_SKIP() << "golden regenerated at " << golden_path;
    }
    std::ifstream in(golden_path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << golden_path
                    << " (run with TVACR_UPDATE_GOLDEN=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(json, expected.str());
}

TEST(LintCatalogue, EveryRuleIsRegisteredAndListed) {
    const auto registry = Registry::with_builtin_rules();
    const std::vector<std::string> names = {
        "no-wallclock",          "no-ambient-random", "no-unordered-iteration-in-output",
        "no-iostream-in-lib",    "no-raw-new-delete", "pragma-once-required",
        "no-float-equality",
    };
    EXPECT_EQ(registry.rules().size(), names.size());
    const std::string listing = render_rule_list(registry);
    for (const auto& name : names) {
        EXPECT_NE(registry.find(name), nullptr) << name;
        EXPECT_NE(listing.find(name), std::string::npos) << name;
    }
    EXPECT_NE(listing.find(kUnusedSuppressionRule), std::string::npos);
    EXPECT_NE(listing.find(kMalformedSuppressionRule), std::string::npos);
}

}  // namespace
}  // namespace tvacr::lint
