// Tests for the net substrate: addresses, checksums, header codecs, frame
// building/parsing, flows and the pcap file format.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "net/address.hpp"
#include "net/checksum.hpp"
#include "net/fast_parse.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "net/pcapng.hpp"

namespace tvacr::net {
namespace {

// --------------------------------------------------------------- addresses

TEST(MacAddressTest, ParseAndFormatRoundTrip) {
    const auto mac = MacAddress::parse("02:00:ab:cd:ef:01");
    ASSERT_TRUE(mac.ok());
    EXPECT_EQ(mac.value().to_string(), "02:00:ab:cd:ef:01");
}

TEST(MacAddressTest, RejectsMalformed) {
    EXPECT_FALSE(MacAddress::parse("02:00:ab:cd:ef").ok());
    EXPECT_FALSE(MacAddress::parse("02:00:ab:cd:ef:zz").ok());
    EXPECT_FALSE(MacAddress::parse("0200abcdef01").ok());
}

TEST(MacAddressTest, LocalIsLocallyAdministeredUnicast) {
    const auto mac = MacAddress::local(7);
    EXPECT_EQ(mac.octets()[0] & 0x02, 0x02);  // locally administered
    EXPECT_EQ(mac.octets()[0] & 0x01, 0x00);  // unicast
    EXPECT_NE(MacAddress::local(1), MacAddress::local(2));
}

TEST(MacAddressTest, Broadcast) {
    EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
    EXPECT_FALSE(MacAddress::local(1).is_broadcast());
}

TEST(Ipv4AddressTest, ParseAndFormatRoundTrip) {
    const auto ip = Ipv4Address::parse("192.168.10.25");
    ASSERT_TRUE(ip.ok());
    EXPECT_EQ(ip.value().to_string(), "192.168.10.25");
    EXPECT_EQ(ip.value(), Ipv4Address(192, 168, 10, 25));
}

TEST(Ipv4AddressTest, RejectsMalformed) {
    EXPECT_FALSE(Ipv4Address::parse("192.168.1").ok());
    EXPECT_FALSE(Ipv4Address::parse("192.168.1.256").ok());
    EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").ok());
    EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").ok());
    EXPECT_FALSE(Ipv4Address::parse("1..2.3").ok());
}

TEST(Ipv4RangeTest, ContainsRespectsPrefix) {
    const auto range = Ipv4Range::parse("203.0.113.0/24");
    ASSERT_TRUE(range.ok());
    EXPECT_TRUE(range.value().contains(Ipv4Address(203, 0, 113, 77)));
    EXPECT_FALSE(range.value().contains(Ipv4Address(203, 0, 114, 1)));
}

TEST(Ipv4RangeTest, HostAndUniversalPrefixes) {
    const auto host = Ipv4Range{Ipv4Address(10, 0, 0, 1), 32};
    EXPECT_TRUE(host.contains(Ipv4Address(10, 0, 0, 1)));
    EXPECT_FALSE(host.contains(Ipv4Address(10, 0, 0, 2)));
    const auto all = Ipv4Range{Ipv4Address(0, 0, 0, 0), 0};
    EXPECT_TRUE(all.contains(Ipv4Address(255, 255, 255, 255)));
}

// ---------------------------------------------------------------- checksum

TEST(ChecksumTest, Rfc1071WorkedExample) {
    // Classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
    const Bytes data = {0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7};
    EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xDDF2 & 0xFFFF));
}

TEST(ChecksumTest, OddLengthPadsWithZero) {
    const Bytes even = {0x12, 0x34, 0x56, 0x00};
    const Bytes odd = {0x12, 0x34, 0x56};
    EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(ChecksumTest, VerifiesToZeroWhenEmbedded) {
    // A buffer with its own checksum embedded sums to zero.
    Bytes data = {0x45, 0x00, 0x00, 0x1C, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
                  0x00, 0x00, 0xC0, 0xA8, 0x00, 0x01, 0xC0, 0xA8, 0x00, 0x02};
    const std::uint16_t checksum = internet_checksum(data);
    data[10] = static_cast<std::uint8_t>(checksum >> 8);
    data[11] = static_cast<std::uint8_t>(checksum);
    EXPECT_EQ(internet_checksum(data), 0);
}

// ------------------------------------------------------------ frame builder

Packet make_tcp_frame(const Bytes& payload = {}) {
    const FrameBuilder builder(MacAddress::local(1), MacAddress::local(2));
    return builder.tcp(SimTime::millis(5), Endpoint{Ipv4Address(192, 168, 0, 2), 50000},
                       Endpoint{Ipv4Address(203, 0, 113, 5), 443}, 1000, 2000,
                       TcpFlags::kPsh | TcpFlags::kAck, payload);
}

TEST(FrameBuilderTest, TcpFrameParsesBack) {
    const Bytes payload = {1, 2, 3, 4, 5};
    const Packet frame = make_tcp_frame(payload);
    const auto parsed = parse_packet(frame);
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(parsed.value().tcp.has_value());
    EXPECT_EQ(parsed.value().ip->source, Ipv4Address(192, 168, 0, 2));
    EXPECT_EQ(parsed.value().ip->destination, Ipv4Address(203, 0, 113, 5));
    EXPECT_EQ(parsed.value().tcp->source_port, 50000);
    EXPECT_EQ(parsed.value().tcp->destination_port, 443);
    EXPECT_EQ(parsed.value().tcp->sequence, 1000U);
    EXPECT_EQ(parsed.value().tcp->acknowledgment, 2000U);
    EXPECT_TRUE(parsed.value().tcp->has(TcpFlags::kPsh));
    EXPECT_EQ(parsed.value().payload, payload);
    EXPECT_EQ(parsed.value().timestamp, SimTime::millis(5));
}

TEST(FrameBuilderTest, TcpFrameSizeIsExact) {
    // 14 (eth) + 20 (ip) + 20 (tcp) + payload.
    EXPECT_EQ(make_tcp_frame().size(), 54U);
    const Bytes payload(100, 0xAA);
    EXPECT_EQ(make_tcp_frame(payload).size(), 154U);
}

TEST(FrameBuilderTest, UdpFrameParsesBack) {
    const FrameBuilder builder(MacAddress::local(3), MacAddress::local(4));
    const Bytes payload = {9, 8, 7};
    const Packet frame = builder.udp(SimTime::seconds(1), Endpoint{Ipv4Address(10, 0, 0, 1), 5353},
                                     Endpoint{Ipv4Address(10, 0, 0, 2), 53}, payload);
    const auto parsed = parse_packet(frame);
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(parsed.value().udp.has_value());
    EXPECT_EQ(parsed.value().udp->source_port, 5353);
    EXPECT_EQ(parsed.value().udp->destination_port, 53);
    EXPECT_EQ(parsed.value().payload, payload);
    EXPECT_EQ(frame.size(), 14U + 20U + 8U + 3U);
}

TEST(ParsePacketTest, CorruptedIpChecksumIsRejected) {
    Packet frame = make_tcp_frame({1, 2, 3});
    frame.data[16] ^= 0xFF;  // flip a byte inside the IPv4 header
    EXPECT_FALSE(parse_packet(frame).ok());
}

TEST(ParsePacketTest, TruncatedFrameIsRejected) {
    Packet frame = make_tcp_frame({1, 2, 3});
    frame.data.resize(frame.data.size() - 2);
    EXPECT_FALSE(parse_packet(frame).ok());
}

TEST(ParsePacketTest, NonIpFrameYieldsL2Only) {
    ByteWriter w;
    EthernetHeader eth{MacAddress::broadcast(), MacAddress::local(9), EtherType::kArp};
    eth.encode(w);
    w.fill(28, 0);  // ARP body
    const auto parsed = parse_packet(Packet{SimTime{}, std::move(w).take()});
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(parsed.value().ip.has_value());
    EXPECT_FALSE(parsed.value().is_tcp());
    EXPECT_FALSE(parsed.value().is_udp());
}

// --------------------------------------------------------------- fast parse

/// Differential oracle for the streaming hot path: summarize_frame() must
/// reproduce parse_packet_view()'s observable classification on *any* byte
/// string — attributability, addresses, and the harvested DNS payload.
void expect_matches_full_parser(BytesView frame) {
    const FrameSummary summary = summarize_frame(frame);
    const auto parsed = parse_packet_view(frame, SimTime{});
    const bool attributable = parsed.ok() && parsed.value().ip.has_value();
    ASSERT_EQ(summary.attributable, attributable) << "frame size " << frame.size();
    if (!attributable) {
        EXPECT_TRUE(summary.dns_payload.empty());
        return;
    }
    const PacketView& view = parsed.value();
    EXPECT_EQ(summary.source, view.ip->source);
    EXPECT_EQ(summary.destination, view.ip->destination);
    if (view.udp.has_value() && view.udp->source_port == 53) {
        ASSERT_EQ(summary.dns_payload.size(), view.payload.size());
        EXPECT_TRUE(std::equal(summary.dns_payload.begin(), summary.dns_payload.end(),
                               view.payload.begin()));
    } else {
        EXPECT_TRUE(summary.dns_payload.empty());
    }
}

/// Recomputes the IPv4 header checksum after a deliberate header mutation,
/// so the corner being tested is the mutation itself and not a checksum
/// mismatch masking it.
void fix_ip_checksum(Bytes& frame) {
    ASSERT_GE(frame.size(), 34U);
    frame[24] = 0;
    frame[25] = 0;
    const std::uint16_t checksum = internet_checksum(BytesView(frame).subspan(14, 20));
    frame[24] = static_cast<std::uint8_t>(checksum >> 8);
    frame[25] = static_cast<std::uint8_t>(checksum & 0xFF);
}

Packet make_dns_frame(std::uint16_t source_port = 53, const Bytes& payload = {0xAB, 0xCD, 0x01,
                                                                              0x02, 0x03}) {
    const FrameBuilder builder(MacAddress::local(5), MacAddress::local(6));
    return builder.udp(SimTime::millis(1), Endpoint{Ipv4Address(9, 9, 9, 9), source_port},
                       Endpoint{Ipv4Address(192, 168, 0, 2), 40000}, payload);
}

TEST(FastParseTest, AgreesOnWellFormedFrames) {
    expect_matches_full_parser(make_tcp_frame().data);
    expect_matches_full_parser(make_tcp_frame(Bytes(300, 0x42)).data);
    expect_matches_full_parser(make_dns_frame().data);          // DNS response: payload harvested
    expect_matches_full_parser(make_dns_frame(5353).data);      // mDNS: not harvested
    expect_matches_full_parser(make_dns_frame(53, {}).data);    // empty DNS payload
    const FrameSummary dns = summarize_frame(make_dns_frame().data);
    EXPECT_TRUE(dns.attributable);
    EXPECT_EQ(dns.dns_payload.size(), 5U);

    // Non-IP (ARP) frame: parses, but carries no IPv4 layer -> unattributable.
    ByteWriter w;
    EthernetHeader eth{MacAddress::broadcast(), MacAddress::local(9), EtherType::kArp};
    eth.encode(w);
    w.fill(28, 0);
    const Bytes arp = std::move(w).take();
    expect_matches_full_parser(arp);
}

TEST(FastParseTest, AgreesOnEveryTruncationLength) {
    for (const Bytes& whole : {make_tcp_frame({1, 2, 3, 4, 5, 6, 7, 8}).data,
                               make_dns_frame().data}) {
        for (std::size_t n = 0; n <= whole.size(); ++n) {
            expect_matches_full_parser(BytesView(whole).first(n));
        }
    }
}

TEST(FastParseTest, AgreesOnCraftedHeaderCorners) {
    const Bytes tcp = make_tcp_frame(Bytes(12, 0x33)).data;
    const Bytes udp = make_dns_frame().data;

    // Each case mutates a copy; `fix` recomputes the IP checksum so the
    // mutation itself (not a stale checksum) drives the classification.
    const auto mutated = [](Bytes frame, std::size_t at, std::uint8_t value, bool fix) {
        frame[at] = value;
        if (fix) fix_ip_checksum(frame);
        return frame;
    };

    expect_matches_full_parser(mutated(tcp, 16, 0xFF, false));  // corrupted IP checksum
    expect_matches_full_parser(mutated(tcp, 14, 0x46, true));   // IHL 6 (options) rejected
    expect_matches_full_parser(mutated(tcp, 14, 0x55, true));   // IPv5 rejected
    expect_matches_full_parser(mutated(tcp, 12, 0x08, false));  // still IPv4 ethertype
    expect_matches_full_parser(mutated(tcp, 13, 0x06, false));  // ARP ethertype
    expect_matches_full_parser(mutated(tcp, 23, 1, true));      // ICMP: attributable, no ports
    expect_matches_full_parser(mutated(tcp, 23, 0x99, true));   // unknown proto: attributable

    // total_length corners: below the minimum header, past the frame end,
    // and shorter than the frame (Ethernet trailer padding is legal).
    {
        Bytes frame = tcp;
        frame[16] = 0;
        frame[17] = 19;
        fix_ip_checksum(frame);
        expect_matches_full_parser(frame);
    }
    {
        Bytes frame = tcp;
        frame[16] = 0x7F;
        frame[17] = 0xFF;
        fix_ip_checksum(frame);
        expect_matches_full_parser(frame);
    }
    {
        Bytes frame = tcp;
        frame.insert(frame.end(), 18, 0x00);  // trailer bytes beyond total_length
        expect_matches_full_parser(frame);
    }

    // TCP data-offset corners: below the legal minimum, options eating into
    // the payload, and a header claiming more than the IP payload holds.
    expect_matches_full_parser(mutated(tcp, 46, 0x40, false));  // offset 4 words: reject
    expect_matches_full_parser(mutated(tcp, 46, 0x60, false));  // 4 option bytes: accept
    expect_matches_full_parser(mutated(tcp, 46, 0xF0, false));  // 60B header > payload: reject

    // UDP length corners: below the 8-byte header, past the frame, and
    // shorter than the IP payload claims.
    expect_matches_full_parser(mutated(udp, 39, 4, false));
    expect_matches_full_parser(mutated(udp, 39, 200, false));
    expect_matches_full_parser(mutated(udp, 39, 11, false));
}

TEST(FastParseTest, AgreesOnRandomByteFlips) {
    // Fuzz the equivalence: random single/multi-byte mutations anywhere in
    // the frame, half the time with the checksum re-fixed so deeper layers
    // stay reachable. Deterministic seed, so failures reproduce.
    Rng rng(0xFA57BEEF);
    const Bytes bases[] = {make_tcp_frame(Bytes(40, 0x77)).data, make_dns_frame().data};
    for (int trial = 0; trial < 3000; ++trial) {
        Bytes frame = bases[trial % 2];
        const int flips = 1 + static_cast<int>(rng() % 3);
        for (int f = 0; f < flips; ++f) {
            const std::size_t at = static_cast<std::size_t>(rng() % frame.size());
            frame[at] = static_cast<std::uint8_t>(rng());
        }
        if (rng() % 2 == 0) fix_ip_checksum(frame);
        expect_matches_full_parser(frame);
    }
}

// -------------------------------------------------------------------- flows

TEST(FiveTupleTest, CanonicalIsDirectionInsensitive) {
    const FiveTuple forward{Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1111, 443,
                            IpProtocol::kTcp};
    FiveTuple backward = forward;
    std::swap(backward.source, backward.destination);
    std::swap(backward.source_port, backward.destination_port);
    EXPECT_EQ(forward.canonical(), backward.canonical());
    EXPECT_NE(forward, backward);
}

TEST(FlowTableTest, AggregatesBothDirections) {
    FlowTable table;
    const FrameBuilder tv(MacAddress::local(1), MacAddress::local(2));
    const FrameBuilder server(MacAddress::local(2), MacAddress::local(1));
    const Endpoint tv_ep{Ipv4Address(192, 168, 0, 2), 40000};
    const Endpoint server_ep{Ipv4Address(203, 0, 113, 9), 443};

    const Bytes up(100, 1);
    const Bytes down(700, 2);
    table.add(parse_packet(tv.tcp(SimTime::millis(1), tv_ep, server_ep, 1, 1,
                                  TcpFlags::kAck, up)).value());
    table.add(parse_packet(server.tcp(SimTime::millis(2), server_ep, tv_ep, 1, 101,
                                      TcpFlags::kAck, down)).value());

    EXPECT_EQ(table.flow_count(), 1U);
    const FiveTuple key{tv_ep.address, server_ep.address, tv_ep.port, server_ep.port,
                        IpProtocol::kTcp};
    const auto* stats = table.find(key);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->packets, 2U);
    EXPECT_EQ(stats->payload_bytes, 800U);
    EXPECT_EQ(stats->bytes, 800U + 2 * 54U);
    EXPECT_EQ(stats->first_seen, SimTime::millis(1));
    EXPECT_EQ(stats->last_seen, SimTime::millis(2));
}

TEST(FlowTableTest, SortedByBytesDescending) {
    FlowTable table;
    const FrameBuilder builder(MacAddress::local(1), MacAddress::local(2));
    const Endpoint a{Ipv4Address(10, 0, 0, 1), 1000};
    const Endpoint big{Ipv4Address(10, 9, 9, 9), 443};
    const Endpoint small{Ipv4Address(10, 8, 8, 8), 443};
    table.add(parse_packet(builder.tcp(SimTime{}, a, big, 1, 1, 0, Bytes(500, 0))).value());
    table.add(parse_packet(builder.tcp(SimTime{}, a, small, 1, 1, 0, Bytes(5, 0))).value());
    const auto sorted = table.sorted_by_bytes();
    ASSERT_EQ(sorted.size(), 2U);
    EXPECT_EQ(sorted[0].first.canonical().destination_port, 443);
    EXPECT_GT(sorted[0].second.bytes, sorted[1].second.bytes);
}

// --------------------------------------------------------------------- pcap

std::vector<Packet> sample_packets() {
    std::vector<Packet> packets;
    packets.push_back(make_tcp_frame({1, 2, 3}));
    packets.push_back(make_tcp_frame(Bytes(200, 0x55)));
    packets[1].timestamp = SimTime::seconds(2) + SimTime::micros(123456);
    return packets;
}

TEST(PcapTest, RoundTripInMemory) {
    const auto original = sample_packets();
    const Bytes file = to_pcap_bytes(original);
    const auto restored = from_pcap_bytes(file);
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(restored.value().size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(restored.value()[i].timestamp, original[i].timestamp);
        EXPECT_EQ(restored.value()[i].data, original[i].data);
    }
}

TEST(PcapTest, GlobalHeaderFields) {
    const Bytes file = to_pcap_bytes({});
    ASSERT_GE(file.size(), 24U);
    // Little-endian magic, version 2.4, linktype 1.
    EXPECT_EQ(file[0], 0xD4);
    EXPECT_EQ(file[1], 0xC3);
    EXPECT_EQ(file[2], 0xB2);
    EXPECT_EQ(file[3], 0xA1);
    EXPECT_EQ(file[4], 2);
    EXPECT_EQ(file[6], 4);
    EXPECT_EQ(file[20], 1);
}

TEST(PcapTest, StreamingWriterMatchesBatch) {
    const auto packets = sample_packets();
    std::ostringstream stream;
    PcapWriter writer(stream);
    for (const auto& packet : packets) writer.write(packet);
    EXPECT_EQ(writer.packets_written(), packets.size());
    const std::string s = stream.str();
    const Bytes streamed(s.begin(), s.end());
    EXPECT_EQ(streamed, to_pcap_bytes(packets));
}

TEST(PcapTest, ToleratesTruncatedFinalRecord) {
    Bytes file = to_pcap_bytes(sample_packets());
    file.resize(file.size() - 10);  // cut into the final packet body
    const auto restored = from_pcap_bytes(file);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value().size(), 1U);
}

TEST(PcapTest, OversizedPacketIsTruncatedToSnapLenOnWrite) {
    // Regression: the writer used to emit incl_len = the full frame size
    // even past kPcapSnapLen, producing files the reader itself rejected
    // ("record exceeds snaplen"). The writer now truncates the stored bytes
    // to the snap length while preserving the true size in orig_len.
    Packet oversized;
    oversized.timestamp = SimTime::seconds(1);
    oversized.data = Bytes(kPcapSnapLen + 1000, 0xAB);
    Packet normal = make_tcp_frame({1, 2, 3});

    const Bytes file = to_pcap_bytes({oversized, normal});
    const auto restored = from_pcap_bytes(file);
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(restored.value().size(), 2U);
    // First record: capped at the snap length, content preserved up to it.
    EXPECT_EQ(restored.value()[0].data.size(), kPcapSnapLen);
    EXPECT_EQ(restored.value()[0].data, Bytes(kPcapSnapLen, 0xAB));
    EXPECT_EQ(restored.value()[0].timestamp, oversized.timestamp);
    // Records after the oversized one are unaffected.
    EXPECT_EQ(restored.value()[1].data, normal.data);
    // orig_len (bytes 12..15 of the record header, little-endian) still
    // records the untruncated size.
    const std::size_t record = 24;  // first record header after the global header
    const std::uint32_t orig_len = static_cast<std::uint32_t>(file[record + 12]) |
                                   (static_cast<std::uint32_t>(file[record + 13]) << 8) |
                                   (static_cast<std::uint32_t>(file[record + 14]) << 16) |
                                   (static_cast<std::uint32_t>(file[record + 15]) << 24);
    EXPECT_EQ(orig_len, kPcapSnapLen + 1000);
}

namespace {

/// Pokes a little-endian u32 into raw pcap bytes (header/record patching).
void poke_u32le(Bytes& bytes, std::size_t at, std::uint32_t value) {
    bytes[at] = static_cast<std::uint8_t>(value & 0xFF);
    bytes[at + 1] = static_cast<std::uint8_t>((value >> 8) & 0xFF);
    bytes[at + 2] = static_cast<std::uint8_t>((value >> 16) & 0xFF);
    bytes[at + 3] = static_cast<std::uint8_t>((value >> 24) & 0xFF);
}

/// A hand-built single-record pcap with an arbitrary declared snaplen and
/// record length — the shape a foreign (non-toolkit) capture tool produces.
Bytes foreign_pcap(std::uint32_t declared_snaplen, std::uint32_t record_len) {
    Bytes file = to_pcap_bytes({});
    poke_u32le(file, 16, declared_snaplen);
    const std::size_t record = file.size();
    file.resize(record + kPcapRecordHeaderLen + record_len, 0xCD);
    poke_u32le(file, record, 3);           // ts_sec
    poke_u32le(file, record + 4, 0);       // ts_usec
    poke_u32le(file, record + 8, record_len);
    poke_u32le(file, record + 12, record_len);
    return file;
}

std::string write_temp(const std::string& name, const Bytes& bytes) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return path;
}

}  // namespace

TEST(PcapTest, HonorsDeclaredSnapLenLargerThanDefault) {
    // Regression: records were validated against the compile-time
    // kPcapSnapLen instead of the snaplen the file header declares, so a
    // valid foreign capture with a bigger limit was rejected as corrupt.
    const Bytes file = foreign_pcap(/*declared_snaplen=*/0x80000, /*record_len=*/300000);
    const auto restored = from_pcap_bytes(file);
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(restored.value().size(), 1U);
    EXPECT_EQ(restored.value()[0].data.size(), 300000U);
    EXPECT_EQ(restored.value()[0].timestamp, SimTime::seconds(3));
}

TEST(PcapTest, RejectsRecordExceedingDeclaredSnapLen) {
    // The declared limit is still enforced: a record longer than the header
    // promises is corruption, however small the numbers.
    const Bytes file = foreign_pcap(/*declared_snaplen=*/100, /*record_len=*/200);
    EXPECT_FALSE(from_pcap_bytes(file).ok());
}

TEST(PcapTest, UnlimitedSnapLenIsClampedNotRejected) {
    // Writers declaring "unlimited" (0) must not disable validation or
    // demand giant buffers: the effective limit clamps to kPcapMaxSnapLen.
    const Bytes file = foreign_pcap(/*declared_snaplen=*/0, /*record_len=*/300000);
    const auto restored = from_pcap_bytes(file);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value()[0].data.size(), 300000U);
}

TEST(PcapReaderTest, StreamsIdenticallyToFromPcapBytes) {
    std::vector<Packet> packets;
    for (int i = 0; i < 300; ++i) {
        packets.push_back(make_tcp_frame(Bytes(static_cast<std::size_t>(37 * i % 900), 0x5A)));
        packets.back().timestamp = SimTime::millis(i * 7);
    }
    const std::string path = write_temp("tvacr_pcap_stream.pcap", to_pcap_bytes(packets));
    auto reader = PcapReader::open(path);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.value().declared_snaplen(), kPcapSnapLen);
    std::size_t i = 0;
    while (true) {
        auto record = reader.value().next();
        ASSERT_TRUE(record.ok());
        if (!record.value().has_value()) break;
        ASSERT_LT(i, packets.size());
        EXPECT_EQ(record.value()->timestamp, packets[i].timestamp);
        EXPECT_EQ(Bytes(record.value()->frame.begin(), record.value()->frame.end()),
                  packets[i].data);
        EXPECT_EQ(record.value()->orig_len, packets[i].data.size());
        ++i;
    }
    EXPECT_EQ(i, packets.size());
    EXPECT_EQ(reader.value().packets_read(), packets.size());
    // Exhausted readers keep returning end-of-capture, not errors.
    auto again = reader.value().next();
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again.value().has_value());
}

TEST(PcapReaderTest, ToleratesTruncatedFinalRecord) {
    Bytes file = to_pcap_bytes(sample_packets());
    file.resize(file.size() - 10);  // cut into the final packet body
    const std::string path = write_temp("tvacr_pcap_stream_trunc.pcap", file);
    auto reader = PcapReader::open(path);
    ASSERT_TRUE(reader.ok());
    auto first = reader.value().next();
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first.value().has_value());
    auto second = reader.value().next();
    ASSERT_TRUE(second.ok());
    EXPECT_FALSE(second.value().has_value());  // truncation ends the capture cleanly
}

TEST(PcapReaderTest, HonorsDeclaredSnapLenAndRejectsExcess) {
    const std::string big = write_temp("tvacr_pcap_stream_big.pcap",
                                       foreign_pcap(0x80000, 300000));
    auto reader = PcapReader::open(big);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.value().declared_snaplen(), 0x80000U);
    auto record = reader.value().next();
    ASSERT_TRUE(record.ok());
    ASSERT_TRUE(record.value().has_value());
    EXPECT_EQ(record.value()->frame.size(), 300000U);

    const std::string bad = write_temp("tvacr_pcap_stream_bad.pcap", foreign_pcap(100, 200));
    auto bad_reader = PcapReader::open(bad);
    ASSERT_TRUE(bad_reader.ok());
    EXPECT_FALSE(bad_reader.value().next().ok());
}

/// Streams one file through both PcapReader backends and requires the
/// record sequences — including the position and message of any error — to
/// be indistinguishable.
void expect_backends_agree(const std::string& path) {
    auto mapped = PcapReader::open(path, PcapBackend::kAuto);
    auto buffered = PcapReader::open(path, PcapBackend::kBuffered);
    ASSERT_EQ(mapped.ok(), buffered.ok());
    if (!mapped.ok()) {
        EXPECT_EQ(mapped.error().message, buffered.error().message);
        return;
    }
    EXPECT_FALSE(buffered.value().memory_mapped());
    EXPECT_EQ(mapped.value().declared_snaplen(), buffered.value().declared_snaplen());
    while (true) {
        auto a = mapped.value().next();
        auto b = buffered.value().next();
        ASSERT_EQ(a.ok(), b.ok());
        if (!a.ok()) {
            EXPECT_EQ(a.error().message, b.error().message);
            return;
        }
        ASSERT_EQ(a.value().has_value(), b.value().has_value());
        if (!a.value().has_value()) break;
        EXPECT_EQ(a.value()->timestamp, b.value()->timestamp);
        EXPECT_EQ(a.value()->orig_len, b.value()->orig_len);
        ASSERT_EQ(a.value()->frame.size(), b.value()->frame.size());
        EXPECT_TRUE(std::equal(a.value()->frame.begin(), a.value()->frame.end(),
                               b.value()->frame.begin()));
    }
    EXPECT_EQ(mapped.value().packets_read(), buffered.value().packets_read());
}

TEST(PcapReaderTest, MappedBackendStreamsIdenticallyToBuffered) {
    std::vector<Packet> packets;
    for (int i = 0; i < 200; ++i) {
        packets.push_back(make_tcp_frame(Bytes(static_cast<std::size_t>(41 * i % 700), 0xA5)));
        packets.back().timestamp = SimTime::millis(i * 13);
    }
    const std::string path = write_temp("tvacr_pcap_mmap.pcap", to_pcap_bytes(packets));
#if defined(__unix__) || defined(__APPLE__)
    auto probe = PcapReader::open(path);
    ASSERT_TRUE(probe.ok());
    EXPECT_TRUE(probe.value().memory_mapped());
#endif
    expect_backends_agree(path);
}

TEST(PcapReaderTest, BackendsAgreeOnTruncatedAndCorruptFiles) {
    Bytes truncated = to_pcap_bytes(sample_packets());
    truncated.resize(truncated.size() - 10);
    expect_backends_agree(write_temp("tvacr_pcap_mmap_trunc.pcap", truncated));

    // Record longer than the declared snaplen: both backends must fail at
    // the same record with the same message.
    expect_backends_agree(write_temp("tvacr_pcap_mmap_bad.pcap", foreign_pcap(100, 200)));

    // Foreign snaplen larger than the default: both honor the declared one.
    expect_backends_agree(write_temp("tvacr_pcap_mmap_big.pcap", foreign_pcap(0x80000, 300000)));

    // Header-only file and a header cut short.
    expect_backends_agree(write_temp("tvacr_pcap_mmap_empty.pcap", to_pcap_bytes({})));
    Bytes header_cut = to_pcap_bytes({});
    header_cut.resize(20);
    expect_backends_agree(write_temp("tvacr_pcap_mmap_cut.pcap", header_cut));
}

TEST(PcapReaderTest, OpenRejectsMissingAndGarbageFiles) {
    EXPECT_FALSE(PcapReader::open(::testing::TempDir() + "tvacr_nope.pcap").ok());
    Bytes garbage = to_pcap_bytes(sample_packets());
    garbage[0] ^= 0xFF;
    const std::string path = write_temp("tvacr_pcap_garbage.pcap", garbage);
    EXPECT_FALSE(PcapReader::open(path).ok());
}

TEST(PcapTest, RejectsGarbageMagic) {
    Bytes file = to_pcap_bytes(sample_packets());
    file[0] ^= 0xFF;
    EXPECT_FALSE(from_pcap_bytes(file).ok());
}

TEST(PcapTest, FileRoundTrip) {
    const auto packets = sample_packets();
    const std::string path = ::testing::TempDir() + "tvacr_pcap_test.pcap";
    ASSERT_TRUE(write_pcap_file(path, packets).ok());
    const auto restored = read_pcap_file(path);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value().size(), packets.size());
    EXPECT_FALSE(read_pcap_file(path + ".missing").ok());
}

// ------------------------------------------------------------------- pcapng

TEST(PcapngTest, RoundTripInMemory) {
    const auto original = sample_packets();
    const auto restored = from_pcapng_bytes(to_pcapng_bytes(original));
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(restored.value().size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(restored.value()[i].timestamp, original[i].timestamp);
        EXPECT_EQ(restored.value()[i].data, original[i].data);
    }
}

TEST(PcapngTest, BlocksAre32BitAligned) {
    const Bytes file = to_pcapng_bytes(sample_packets());
    EXPECT_EQ(file.size() % 4, 0U);
    // First block is the SHB with the little-endian byte-order magic.
    EXPECT_EQ(file[0], 0x0A);
    EXPECT_EQ(file[3], 0x0A);
    EXPECT_EQ(file[8], 0x4D);
    EXPECT_EQ(file[11], 0x1A);
}

TEST(PcapngTest, SkipsUnknownBlocks) {
    // Inject a Name Resolution Block (type 4) between IDB and EPBs.
    const auto packets = sample_packets();
    Bytes file = to_pcapng_bytes(packets);
    // Build an unknown block and splice after SHB (28 bytes) + IDB (20).
    const Bytes unknown = {0x04, 0, 0, 0, 0x10, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD,
                           0x10, 0, 0, 0};
    file.insert(file.begin() + 48, unknown.begin(), unknown.end());
    const auto restored = from_pcapng_bytes(file);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value().size(), packets.size());
}

TEST(PcapngTest, ToleratesTruncatedTail) {
    Bytes file = to_pcapng_bytes(sample_packets());
    file.resize(file.size() - 7);
    const auto restored = from_pcapng_bytes(file);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value().size(), 1U);
}

TEST(PcapngTest, RejectsGarbage) {
    EXPECT_FALSE(from_pcapng_bytes(Bytes{1, 2, 3, 4, 5, 6}).ok());
    Bytes file = to_pcapng_bytes(sample_packets());
    file[8] ^= 0xFF;  // byte-order magic
    EXPECT_FALSE(from_pcapng_bytes(file).ok());
}

TEST(PcapngTest, ReadAnyCaptureDispatches) {
    const auto packets = sample_packets();
    const auto via_pcap = read_any_capture(to_pcap_bytes(packets));
    const auto via_pcapng = read_any_capture(to_pcapng_bytes(packets));
    ASSERT_TRUE(via_pcap.ok());
    ASSERT_TRUE(via_pcapng.ok());
    EXPECT_EQ(via_pcap.value().size(), packets.size());
    EXPECT_EQ(via_pcapng.value().size(), packets.size());
}

TEST(PcapngTest, FileRoundTrip) {
    const auto packets = sample_packets();
    const std::string path = ::testing::TempDir() + "tvacr_pcapng_test.pcapng";
    ASSERT_TRUE(write_pcapng_file(path, packets).ok());
    const auto restored = read_any_capture_file(path);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value().size(), packets.size());
}

}  // namespace
}  // namespace tvacr::net
