// Integration tests for the core auditing pipeline: testbed assembly,
// experiment execution (capture workflow), campaign sweeps, the audit
// pipeline end-to-end, paper reference data, and cross-run determinism.
//
// Durations are scaled down (minutes, not the paper's hour) to keep the
// suite fast; the benchmarks run the full-length experiments.
#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "analysis/acr_detect.hpp"
#include "core/audit.hpp"
#include "core/campaign.hpp"
#include "core/experiment.hpp"
#include "core/paper.hpp"
#include "core/validation.hpp"

namespace tvacr::core {
namespace {

ExperimentSpec quick_spec(tv::Brand brand, tv::Country country, tv::Scenario scenario,
                          tv::Phase phase, int minutes = 5) {
    ExperimentSpec spec;
    spec.brand = brand;
    spec.country = country;
    spec.scenario = scenario;
    spec.phase = phase;
    spec.duration = SimTime::minutes(minutes);
    spec.seed = 99;
    return spec;
}

// ------------------------------------------------------------------ testbed

TEST(TestbedTest, RegistersAllPlatformDomains) {
    TestbedConfig config;
    config.brand = tv::Brand::kSamsung;
    config.country = tv::Country::kUk;
    Testbed bed(config);

    for (const auto& domain : bed.tv().acr().domain_names()) {
        EXPECT_TRUE(bed.address_of(domain).has_value()) << domain;
    }
    // Ground truth covers every registered server.
    EXPECT_GT(bed.ground_truth().placements().size(), 8U);
    EXPECT_EQ(bed.vantage().name, "London");
}

TEST(TestbedTest, UsVantageIsSanJose) {
    TestbedConfig config;
    config.country = tv::Country::kUs;
    Testbed bed(config);
    EXPECT_EQ(bed.vantage().name, "San Jose");
}

TEST(TestbedTest, AcrEndpointCitiesMatchPaper) {
    TestbedConfig uk;
    uk.brand = tv::Brand::kSamsung;
    uk.country = tv::Country::kUk;
    Testbed bed(uk);
    const auto& truth = bed.ground_truth();

    const auto city_of = [&](const std::string& domain) -> std::string {
        const auto address = bed.address_of(domain);
        if (!address) return "?";
        const auto* city = truth.city_of(*address);
        return city != nullptr ? city->name : "?";
    };
    EXPECT_EQ(city_of("acr-eu-prd.samsungcloud.tv"), "London");
    EXPECT_EQ(city_of("log-ingestion-eu.samsungacr.com"), "London");
    EXPECT_EQ(city_of("acr0.samsungcloudsolution.com"), "Amsterdam");
    EXPECT_EQ(city_of("log-config.samsungacr.com"), "New York");  // §4.1 concern

    TestbedConfig lg_uk;
    lg_uk.brand = tv::Brand::kLg;
    Testbed lg_bed(lg_uk);
    EXPECT_EQ(lg_bed.ground_truth().city_of(*lg_bed.address_of("eu-acr3.alphonso.tv"))->name,
              "Amsterdam");
}

TEST(TestbedTest, RotatingDomainsAllResolve) {
    TestbedConfig config;
    config.brand = tv::Brand::kLg;
    config.country = tv::Country::kUs;
    Testbed bed(config);
    for (int rotation = 0; rotation < 10; ++rotation) {
        EXPECT_TRUE(bed.address_of(tv::rotated_name("tkacrX.alphonso.tv", rotation)).has_value());
    }
}

// --------------------------------------------------------------- experiment

TEST(ExperimentTest, CaptureContainsBootDnsBurst) {
    const auto result = ExperimentRunner::run(
        quick_spec(tv::Brand::kSamsung, tv::Country::kUk, tv::Scenario::kIdle,
                   tv::Phase::kLInOIn, 3));
    ASSERT_FALSE(result.capture.empty());

    const auto analyzer = result.analyze();
    EXPECT_GT(analyzer.dns().responses_seen(), 5U);
    // The queried names include the ACR set for this brand/country.
    std::set<std::string> queried;
    for (const auto& entry : analyzer.dns().queried_names()) queried.insert(entry.name);
    for (const auto& domain : result.true_acr_domains) {
        EXPECT_TRUE(queried.contains(domain)) << domain;
    }
}

TEST(ExperimentTest, LinearProducesAcrTrafficAndMatches) {
    const auto result = ExperimentRunner::run(
        quick_spec(tv::Brand::kLg, tv::Country::kUk, tv::Scenario::kLinear,
                   tv::Phase::kLInOIn, 5));
    EXPECT_GT(result.batches_uploaded, 10U);
    EXPECT_GT(result.captures_taken, 20000U);  // 10 ms cadence
    EXPECT_GT(result.backend_matches, 5U);

    const auto trace = trace_of(result);
    EXPECT_GT(trace.total_acr_kb, 100.0);
}

TEST(ExperimentTest, OptedOutHasZeroAcrTrafficButTvStillWorks) {
    const auto result = ExperimentRunner::run(
        quick_spec(tv::Brand::kSamsung, tv::Country::kUk, tv::Scenario::kLinear,
                   tv::Phase::kLInOOut, 5));
    EXPECT_EQ(result.batches_uploaded, 0U);
    EXPECT_EQ(result.backend_batches, 0U);
    const auto trace = trace_of(result);
    EXPECT_DOUBLE_EQ(trace.total_acr_kb, 0.0);
    // The TV is not dead: platform/background traffic still flows.
    EXPECT_GT(result.capture.size(), 20U);
}

TEST(ExperimentTest, CaptureIsTimeOrderedAndParseable) {
    const auto result = ExperimentRunner::run(
        quick_spec(tv::Brand::kSamsung, tv::Country::kUs, tv::Scenario::kFast,
                   tv::Phase::kLInOIn, 3));
    int parse_failures = 0;
    for (std::size_t i = 0; i < result.capture.size(); ++i) {
        if (!net::parse_packet(result.capture[i]).ok()) ++parse_failures;
        if (i > 0) {
            EXPECT_GE(result.capture[i].timestamp, result.capture[i - 1].timestamp);
        }
    }
    EXPECT_EQ(parse_failures, 0);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
    const auto spec = quick_spec(tv::Brand::kLg, tv::Country::kUs, tv::Scenario::kFast,
                                 tv::Phase::kLInOIn, 3);
    const auto a = ExperimentRunner::run(spec);
    const auto b = ExperimentRunner::run(spec);
    ASSERT_EQ(a.capture.size(), b.capture.size());
    EXPECT_EQ(a.batches_uploaded, b.batches_uploaded);
    std::uint64_t bytes_a = 0;
    std::uint64_t bytes_b = 0;
    for (const auto& packet : a.capture) bytes_a += packet.size();
    for (const auto& packet : b.capture) bytes_b += packet.size();
    EXPECT_EQ(bytes_a, bytes_b);
}

TEST(ExperimentTest, LoginStatusLeavesAcrDomainsUnchanged) {
    // Paper §4.2: the set of ACR domains contacted is identical between
    // logged-in and logged-out phases; volumes differ only by seed noise.
    const auto logged_in = ExperimentRunner::run(
        quick_spec(tv::Brand::kSamsung, tv::Country::kUk, tv::Scenario::kLinear,
                   tv::Phase::kLInOIn, 5));
    const auto logged_out = ExperimentRunner::run(
        quick_spec(tv::Brand::kSamsung, tv::Country::kUk, tv::Scenario::kLinear,
                   tv::Phase::kLOutOIn, 5));
    const auto trace_in = trace_of(logged_in);
    const auto trace_out = trace_of(logged_out);

    std::set<std::string> domains_in;
    std::set<std::string> domains_out;
    for (const auto& [domain, kb] : trace_in.kb_per_domain) {
        if (kb > 0) domains_in.insert(domain);
    }
    for (const auto& [domain, kb] : trace_out.kb_per_domain) {
        if (kb > 0) domains_out.insert(domain);
    }
    EXPECT_EQ(domains_in, domains_out);
    // Total volume within 25% of each other.
    EXPECT_NEAR(trace_in.total_acr_kb, trace_out.total_acr_kb,
                0.25 * trace_in.total_acr_kb);
}

TEST(ExperimentTest, UkVsUsFastDiffers) {
    // Paper §4.3 headline: FAST triggers ACR in the US but not in the UK.
    const auto uk = trace_of(ExperimentRunner::run(
        quick_spec(tv::Brand::kLg, tv::Country::kUk, tv::Scenario::kFast,
                   tv::Phase::kLInOIn, 5)));
    const auto us = trace_of(ExperimentRunner::run(
        quick_spec(tv::Brand::kLg, tv::Country::kUs, tv::Scenario::kFast,
                   tv::Phase::kLInOIn, 5)));
    EXPECT_GT(us.total_acr_kb, 5.0 * uk.total_acr_kb);
}

// --------------------------------------------------- validation grid (param)

struct GridCase {
    tv::Brand brand;
    tv::Country country;
    tv::Scenario scenario;
    tv::Phase phase;
};

class ExperimentGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ExperimentGrid, ShortRunPassesValidationChecks) {
    const auto& param = GetParam();
    ExperimentSpec spec;
    spec.brand = param.brand;
    spec.country = param.country;
    spec.scenario = param.scenario;
    spec.phase = param.phase;
    spec.duration = SimTime::minutes(3);
    spec.seed = 77;
    const auto result = ExperimentRunner::run(spec);
    const auto report = validate_experiment(result);
    EXPECT_TRUE(report.all_passed()) << spec.name() << "\n" << report.render();
}

std::vector<GridCase> grid_cases() {
    std::vector<GridCase> cases;
    for (const tv::Brand brand : {tv::Brand::kLg, tv::Brand::kSamsung}) {
        for (const tv::Country country : {tv::Country::kUk, tv::Country::kUs}) {
            for (const tv::Scenario scenario : tv::kAllScenarios) {
                // Two representative phases keep the grid fast while covering
                // both consent states; the full 4-phase grid runs in benches.
                cases.push_back({brand, country, scenario, tv::Phase::kLInOIn});
                cases.push_back({brand, country, scenario, tv::Phase::kLOutOOut});
            }
        }
    }
    return cases;
}

std::string grid_name(const ::testing::TestParamInfo<GridCase>& info) {
    std::string name = to_string(info.param.brand) + "_" + to_string(info.param.country) + "_" +
                       to_string(info.param.scenario) + "_" + to_string(info.param.phase);
    for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(FullGrid, ExperimentGrid, ::testing::ValuesIn(grid_cases()),
                         grid_name);

// ----------------------------------------------------------------- campaign

TEST(CampaignTest, DisplayDomainCollapsesRotation) {
    EXPECT_EQ(display_domain("eu-acr7.alphonso.tv"), "eu-acrX.alphonso.tv");
    EXPECT_EQ(display_domain("tkacr0.alphonso.tv"), "tkacrX.alphonso.tv");
    EXPECT_EQ(display_domain("acr0.samsungcloudsolution.com"), "acr0.samsungcloudsolution.com");
    EXPECT_EQ(display_domain("log-config.samsungacr.com"), "log-config.samsungacr.com");
}

TEST(CampaignTest, TableRowDomainsMatchPaperRows) {
    const auto uk = CampaignRunner::table_row_domains(tv::Country::kUk);
    ASSERT_EQ(uk.size(), 5U);  // Tables 2/3 have five rows
    EXPECT_EQ(uk[0], "eu-acrX.alphonso.tv");
    const auto us = CampaignRunner::table_row_domains(tv::Country::kUs);
    ASSERT_EQ(us.size(), 4U);  // Tables 4/5 have four rows
    EXPECT_EQ(us[0], "tkacrX.alphonso.tv");
}

TEST(CampaignTest, SweepCoversGridAndRendersTable) {
    const auto traces =
        CampaignRunner::run_sweep(tv::Country::kUk, tv::Phase::kLInOIn, SimTime::minutes(2), 7);
    EXPECT_EQ(traces.size(), 12U);  // 6 scenarios x 2 brands

    const auto table = CampaignRunner::make_table(traces, tv::Country::kUk, tv::Phase::kLInOIn);
    EXPECT_EQ(table.rows.size(), 5U);
    EXPECT_EQ(table.header.size(), 7U);  // domain + 6 scenarios
    const std::string rendered = table.render();
    EXPECT_NE(rendered.find("eu-acrX.alphonso.tv"), std::string::npos);
    EXPECT_NE(rendered.find("Antenna"), std::string::npos);
}

// -------------------------------------------------------------------- paper

TEST(PaperDataTest, TablesExistForOptedInPhases) {
    EXPECT_EQ(paper_table(tv::Country::kUk, tv::Phase::kLInOIn).size(), 5U);
    EXPECT_EQ(paper_table(tv::Country::kUk, tv::Phase::kLOutOIn).size(), 5U);
    EXPECT_EQ(paper_table(tv::Country::kUs, tv::Phase::kLInOIn).size(), 4U);
    EXPECT_EQ(paper_table(tv::Country::kUs, tv::Phase::kLOutOIn).size(), 4U);
    EXPECT_TRUE(paper_table(tv::Country::kUk, tv::Phase::kLInOOut).empty());
}

TEST(PaperDataTest, SpotCheckCells) {
    EXPECT_DOUBLE_EQ(*paper_kb(tv::Country::kUk, tv::Phase::kLInOIn, "eu-acrX.alphonso.tv",
                               tv::Scenario::kLinear),
                     4759.7);
    EXPECT_DOUBLE_EQ(*paper_kb(tv::Country::kUs, tv::Phase::kLOutOIn, "tkacrX.alphonso.tv",
                               tv::Scenario::kFast),
                     4832.5);
    // '-' cells are nullopt.
    EXPECT_FALSE(paper_kb(tv::Country::kUk, tv::Phase::kLInOIn, "acr-eu-prd.samsungcloud.tv",
                          tv::Scenario::kIdle)
                     .has_value());
    EXPECT_FALSE(paper_kb(tv::Country::kUk, tv::Phase::kLInOIn, "unknown.example",
                          tv::Scenario::kIdle)
                     .has_value());
}

TEST(PaperDataTest, LinearAndHdmiDominateEveryPublishedTable) {
    // Structural invariant of the paper's data our reproduction relies on.
    for (const tv::Country country : {tv::Country::kUk, tv::Country::kUs}) {
        for (const tv::Phase phase : {tv::Phase::kLInOIn, tv::Phase::kLOutOIn}) {
            const auto rows = paper_table(country, phase);
            ASSERT_FALSE(rows.empty());
            const auto& lg = rows[0];  // alphonso row
            EXPECT_GT(lg.kb[paper_column(tv::Scenario::kLinear)],
                      10 * lg.kb[paper_column(tv::Scenario::kIdle)]);
            EXPECT_GT(lg.kb[paper_column(tv::Scenario::kHdmi)],
                      10 * lg.kb[paper_column(tv::Scenario::kIdle)]);
        }
    }
}

// -------------------------------------------------------------------- audit

TEST(AuditTest, EndToEndIdentifiesExactlyTheTrueDomains) {
    AuditConfig config;
    config.brand = tv::Brand::kSamsung;
    config.country = tv::Country::kUk;
    config.scenario = tv::Scenario::kLinear;
    config.duration = SimTime::minutes(8);
    config.seed = 3;

    const auto report = AuditPipeline::run(config);
    const std::set<std::string> confirmed(report.confirmed_acr_domains.begin(),
                                          report.confirmed_acr_domains.end());
    const std::set<std::string> truth(report.true_acr_domains.begin(),
                                      report.true_acr_domains.end());
    EXPECT_EQ(confirmed, truth);
    EXPECT_GT(report.opted_in_acr_kb, 10.0);
    EXPECT_DOUBLE_EQ(report.opted_out_acr_kb, 0.0);
    EXPECT_GT(report.backend_matches, 0U);
    EXPECT_FALSE(report.audience_segments.empty());

    // Geolocation recovered the placement for every confirmed endpoint.
    EXPECT_EQ(report.geolocation.size(), confirmed.size());
    for (const auto& entry : report.geolocation) {
        ASSERT_NE(entry.result.final_city, nullptr) << entry.domain;
    }
    const std::string rendered = report.render();
    EXPECT_NE(rendered.find("ACR audit"), std::string::npos);
    EXPECT_NE(rendered.find("Geolocation"), std::string::npos);
}

TEST(AuditTest, LgAuditFindsSingleAlphonsoDomain) {
    AuditConfig config;
    config.brand = tv::Brand::kLg;
    config.country = tv::Country::kUs;
    config.scenario = tv::Scenario::kLinear;
    config.duration = SimTime::minutes(6);
    config.seed = 4;
    const auto report = AuditPipeline::run(config);
    ASSERT_EQ(report.confirmed_acr_domains.size(), 1U);
    EXPECT_NE(report.confirmed_acr_domains[0].find("tkacr"), std::string::npos);
}

}  // namespace
}  // namespace tvacr::core
