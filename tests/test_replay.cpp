// Tests for the .tvcr record/replay layer: the byte codecs (varint, zigzag,
// CRC-32, LZ), the TvcrWriter/TvcrReader format round-trip, the footer index
// queries, the replay-determinism contract (replay-from-block-0 is
// byte-identical to the batch engine; replay-from-block-k equals the batch
// run over the record suffix; --since equals the batch run over the filtered
// capture — at worker counts 1, 4 and 8), and the corruption-robustness
// suite (truncations, bit flips, an index pointing past EOF: always a clean
// Error, never UB — the CI sanitizer matrix runs all of this under
// ASan/UBSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dns/message.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "replay/codec.hpp"
#include "replay/replay.hpp"
#include "replay/tvcr.hpp"

namespace tvacr::replay {
namespace {

using net::Ipv4Address;

const Ipv4Address kDevice(192, 168, 4, 23);
const Ipv4Address kResolver(9, 9, 9, 9);

// ------------------------------------------------------------------ codecs

TEST(CodecTest, VarintRoundTripsBoundaryValues) {
    const std::uint64_t values[] = {0, 1, 127, 128, 16383, 16384, 0xFFFFFFFFULL,
                                    0xFFFFFFFFFFFFFFFFULL};
    for (const std::uint64_t value : values) {
        ByteWriter out;
        put_varint(out, value);
        ByteReader in(out.view());
        auto back = get_varint(in);
        ASSERT_TRUE(back.ok()) << value;
        EXPECT_EQ(back.value(), value);
        EXPECT_TRUE(in.at_end());
    }
}

TEST(CodecTest, VarintRejectsTruncationAndOverlongForms) {
    ByteWriter out;
    put_varint(out, 0xFFFFFFFFFFFFFFFFULL);
    const Bytes encoded = std::move(out).take();
    for (std::size_t len = 0; len < encoded.size(); ++len) {
        ByteReader in(BytesView(encoded.data(), len));
        EXPECT_FALSE(get_varint(in).ok()) << "prefix length " << len;
    }
    // 10 continuation bytes followed by a terminator: longer than any u64.
    const Bytes overlong(11, 0x80);
    ByteReader in(overlong);
    EXPECT_FALSE(get_varint(in).ok());
    // A 10-byte form whose final byte carries bits above bit 63.
    Bytes overflow(9, 0x80);
    overflow.push_back(0x02);
    ByteReader in2(overflow);
    EXPECT_FALSE(get_varint(in2).ok());
}

TEST(CodecTest, ZigzagIsAnInvolutionAndKeepsSmallDeltasSmall) {
    const std::int64_t values[] = {0, 1, -1, 63, -64, std::int64_t{1} << 40,
                                   -(std::int64_t{1} << 40), INT64_MAX, INT64_MIN};
    for (const std::int64_t value : values) {
        EXPECT_EQ(zigzag_decode(zigzag_encode(value)), value);
    }
    EXPECT_EQ(zigzag_encode(-1), 1U);
    EXPECT_EQ(zigzag_encode(1), 2U);
    EXPECT_LT(zigzag_encode(-64), 128U);  // one varint byte
}

TEST(CodecTest, Crc32MatchesKnownVector) {
    const std::string check = "123456789";
    EXPECT_EQ(crc32(BytesView(reinterpret_cast<const std::uint8_t*>(check.data()),
                              check.size())),
              0xCBF43926U);
    EXPECT_EQ(crc32(BytesView{}), 0U);
}

Bytes pseudo_random_bytes(std::size_t n, std::uint64_t seed) {
    Bytes out(n);
    std::uint64_t state = seed;
    for (std::size_t i = 0; i < n; ++i) {
        state = splitmix64(state + i);
        out[i] = static_cast<std::uint8_t>(state);
    }
    return out;
}

TEST(CodecTest, LzRoundTripsVariedInputs) {
    std::vector<Bytes> inputs;
    inputs.push_back(Bytes{});
    inputs.push_back(Bytes{0x42});
    inputs.push_back(Bytes(10000, 0xEE));  // pure RLE, overlapping matches
    inputs.push_back(pseudo_random_bytes(5000, 7));  // incompressible
    Bytes repeats;  // long repeated structure, offsets > 255
    for (int i = 0; i < 300; ++i) {
        const std::string chunk = "domain" + std::to_string(i % 12) + ".example.com|";
        repeats.insert(repeats.end(), chunk.begin(), chunk.end());
    }
    inputs.push_back(repeats);
    for (const Bytes& input : inputs) {
        const Bytes packed = lz_compress(input);
        auto unpacked = lz_decompress(packed, input.size());
        ASSERT_TRUE(unpacked.ok()) << unpacked.error().message;
        EXPECT_EQ(unpacked.value(), input);
    }
    // The compressible cases must actually compress.
    EXPECT_LT(lz_compress(Bytes(10000, 0xEE)).size(), 200U);
    EXPECT_LT(lz_compress(repeats).size(), repeats.size() / 4);
}

TEST(CodecTest, LzDecompressRejectsCorruptStreams) {
    const Bytes input(1000, 0xAB);
    const Bytes packed = lz_compress(input);
    // Every truncation fails cleanly.
    for (std::size_t len = 0; len < packed.size(); ++len) {
        EXPECT_FALSE(lz_decompress(BytesView(packed.data(), len), input.size()).ok());
    }
    // Wrong declared size: both too small and too large are errors.
    EXPECT_FALSE(lz_decompress(packed, input.size() - 1).ok());
    EXPECT_FALSE(lz_decompress(packed, input.size() + 1).ok());
    // A back-reference before the start of the output.
    const Bytes bogus = {0x14, 'a', 0xFF, 0xFF};  // 1 literal, offset 65535
    EXPECT_FALSE(lz_decompress(bogus, 100).ok());
}

// ----------------------------------------------------------------- fixture

net::Packet dns_response_packet(const std::string& name, Ipv4Address address, SimTime t) {
    const auto domain = dns::DomainName::parse(name).value();
    const auto query = make_query(7, domain, dns::RecordType::kA);
    const auto response = make_response(query, {dns::ResourceRecord::a(domain, address)},
                                        dns::ResponseCode::kNoError);
    const net::FrameBuilder builder(net::MacAddress::local(2), net::MacAddress::local(1));
    return builder.udp(t, net::Endpoint{kResolver, dns::kDnsPort},
                       net::Endpoint{kDevice, 40000}, response.encode());
}

net::Packet tcp_packet(Ipv4Address src, Ipv4Address dst, SimTime t, std::size_t payload_size,
                       std::uint8_t fill = 0xEE) {
    const net::FrameBuilder builder(net::MacAddress::local(1), net::MacAddress::local(2));
    const std::uint16_t src_port = src == kDevice ? 50000 : 443;
    const std::uint16_t dst_port = dst == kDevice ? 50000 : 443;
    return builder.tcp(t, net::Endpoint{src, src_port}, net::Endpoint{dst, dst_port}, 1, 1,
                       net::TcpFlags::kAck, Bytes(payload_size, fill));
}

/// A capture exercising the replay corners: pre-birth traffic (stays
/// unresolved), a mapping born mid-capture, two addresses for one domain,
/// foreign traffic, an unparseable frame, and enough packets for several
/// blocks at small block_records.
std::vector<net::Packet> replay_capture() {
    const Ipv4Address acr(23, 0, 1, 10);
    const Ipv4Address ads(23, 0, 2, 20);
    const Ipv4Address ads2(23, 0, 2, 21);
    std::vector<net::Packet> capture;
    capture.push_back(tcp_packet(kDevice, acr, SimTime::millis(5), 400));  // pre-birth
    capture.push_back(dns_response_packet("acr-eu-prd.samsungcloud.tv", acr,
                                          SimTime::millis(10)));
    capture.push_back(dns_response_packet("ads.example.com", ads, SimTime::millis(20)));
    capture.push_back(net::Packet{SimTime::millis(25), Bytes{0xDE, 0xAD}});  // unparseable
    for (int i = 0; i < 240; ++i) {
        const SimTime t = SimTime::millis(30 + i * 10);
        switch (i % 4) {
            case 0: capture.push_back(tcp_packet(kDevice, acr, t, 100 + i)); break;
            case 1: capture.push_back(tcp_packet(acr, kDevice, t, 700)); break;
            case 2: capture.push_back(tcp_packet(kDevice, ads, t, 64)); break;
            default:
                capture.push_back(tcp_packet(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                             t, 32));  // foreign
        }
        if (i == 120) {
            capture.push_back(dns_response_packet("ads.example.com", ads2, t));
            capture.push_back(tcp_packet(ads2, kDevice, t + SimTime::millis(1), 900));
        }
    }
    return capture;
}

std::string batch_report(const std::vector<net::Packet>& packets,
                         analysis::StreamOptions options = {}) {
    return canonical_report(analysis::analyze_packets(packets, kDevice, options));
}

// ------------------------------------------------------------------ format

TEST(TvcrFormatTest, EventsModeRoundTripsRecords) {
    const auto capture = replay_capture();
    TvcrOptions options;
    options.block_records = 32;
    const Bytes tvcr = to_tvcr_bytes(capture, options);

    auto reader = TvcrReader::from_bytes(tvcr);
    ASSERT_TRUE(reader.ok()) << reader.error().message;
    EXPECT_FALSE(reader.value().has_frames());
    EXPECT_EQ(reader.value().total_records(), capture.size());
    EXPECT_EQ(reader.value().blocks().size(), (capture.size() + 31) / 32);

    std::size_t index = 0;
    for (std::size_t b = 0; b < reader.value().blocks().size(); ++b) {
        auto records = reader.value().read_block(b);
        ASSERT_TRUE(records.ok()) << records.error().message;
        EXPECT_EQ(reader.value().blocks()[b].first_index, index);
        for (const TvcrRecord& record : records.value()) {
            ASSERT_LT(index, capture.size());
            const net::Packet& original = capture[index];
            EXPECT_EQ(record.timestamp, original.timestamp);
            EXPECT_EQ(record.frame_bytes, original.data.size());
            EXPECT_EQ(record.orig_len, original.data.size());
            const auto parsed = net::parse_packet_view(original.data, original.timestamp);
            EXPECT_EQ(record.parseable, parsed.ok() && parsed.value().ip.has_value());
            if (record.parseable) {
                EXPECT_EQ(record.source, parsed.value().ip->source);
                EXPECT_EQ(record.destination, parsed.value().ip->destination);
            }
            EXPECT_TRUE(record.frame.empty());  // events mode drops frames
            ++index;
        }
    }
    EXPECT_EQ(index, capture.size());
    // Events mode must be much smaller than the pcap encoding.
    EXPECT_LT(tvcr.size() * 4, net::to_pcap_bytes(capture).size());
}

TEST(TvcrFormatTest, FramesModeRoundTripsPcapByteForByte) {
    const auto capture = replay_capture();
    TvcrOptions options;
    options.keep_frames = true;
    options.block_records = 64;
    const Bytes tvcr = to_tvcr_bytes(capture, options);

    auto packets = from_tvcr_bytes(tvcr);
    ASSERT_TRUE(packets.ok()) << packets.error().message;
    EXPECT_EQ(net::to_pcap_bytes(packets.value()), net::to_pcap_bytes(capture));
}

TEST(TvcrFormatTest, EventsModeRefusesFrameExport) {
    const Bytes tvcr = to_tvcr_bytes(replay_capture());
    EXPECT_FALSE(from_tvcr_bytes(tvcr).ok());
    auto reader = TvcrReader::from_bytes(tvcr);
    ASSERT_TRUE(reader.ok());
    EXPECT_FALSE(export_tvcr_to_pcap(reader.value()).ok());
}

TEST(TvcrFormatTest, EncodingIsByteStable) {
    const auto capture = replay_capture();
    EXPECT_EQ(to_tvcr_bytes(capture), to_tvcr_bytes(capture));
}

TEST(TvcrFormatTest, EmptyCaptureRoundTrips) {
    const Bytes tvcr = to_tvcr_bytes({});
    auto reader = TvcrReader::from_bytes(tvcr);
    ASSERT_TRUE(reader.ok()) << reader.error().message;
    EXPECT_EQ(reader.value().total_records(), 0U);
    EXPECT_TRUE(reader.value().blocks().empty());
    ReplayEngine engine(std::move(reader).value());
    auto replayed = engine.run(kDevice);
    ASSERT_TRUE(replayed.ok());
    EXPECT_EQ(canonical_report(replayed.value()), batch_report({}));
}

TEST(TvcrFormatTest, OrigLenSurvivesSnaplenTruncation) {
    // A frame captured under a snaplen keeps its original length; the
    // events column stores the difference as a varint.
    std::ostringstream out(std::ios::binary);
    TvcrWriter writer(out);
    const auto packet = tcp_packet(kDevice, Ipv4Address(23, 0, 1, 10), SimTime::millis(1), 80);
    writer.add(packet.data, packet.timestamp, static_cast<std::uint32_t>(packet.data.size() + 500));
    ASSERT_TRUE(writer.finish().ok());
    const std::string buffer = out.str();
    auto reader = TvcrReader::from_bytes(
        BytesView(reinterpret_cast<const std::uint8_t*>(buffer.data()), buffer.size()));
    ASSERT_TRUE(reader.ok());
    auto records = reader.value().read_block(0);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records.value().size(), 1U);
    EXPECT_EQ(records.value()[0].frame_bytes, packet.data.size());
    EXPECT_EQ(records.value()[0].orig_len, packet.data.size() + 500);
}

TEST(TvcrFormatTest, FinishTwiceIsAnError) {
    std::ostringstream out(std::ios::binary);
    TvcrWriter writer(out);
    EXPECT_TRUE(writer.finish().ok());
    EXPECT_FALSE(writer.finish().ok());
}

// ------------------------------------------------------------------- index

TEST(TvcrIndexTest, QueriesAreSupersetsAndPruneCorrectly) {
    const auto capture = replay_capture();
    TvcrOptions options;
    options.block_records = 16;
    const Bytes tvcr = to_tvcr_bytes(capture, options);
    auto opened = TvcrReader::from_bytes(tvcr);
    ASSERT_TRUE(opened.ok());
    TvcrReader& reader = opened.value();
    ASSERT_GT(reader.blocks().size(), 4U);

    // Ground truth per block, recomputed from the decoded records.
    const Ipv4Address acr(23, 0, 1, 10);
    std::vector<bool> has_acr(reader.blocks().size(), false);
    for (std::size_t b = 0; b < reader.blocks().size(); ++b) {
        auto records = reader.read_block(b);
        ASSERT_TRUE(records.ok());
        for (const TvcrRecord& record : records.value()) {
            if (record.parseable && (record.source == acr || record.destination == acr)) {
                has_acr[b] = true;
            }
        }
    }
    const auto addr_blocks = reader.blocks_for_address(acr);
    for (std::size_t b = 0; b < has_acr.size(); ++b) {
        if (has_acr[b]) {
            EXPECT_NE(std::find(addr_blocks.begin(), addr_blocks.end(), b), addr_blocks.end())
                << "block " << b << " holds traffic for the address but was pruned";
        }
    }

    // Domain queries: harvested names are in the footer table; blocks with
    // attributed traffic are returned; unknown domains prune to nothing.
    EXPECT_NE(std::find(reader.domains().begin(), reader.domains().end(),
                        "acr-eu-prd.samsungcloud.tv"),
              reader.domains().end());
    EXPECT_FALSE(reader.blocks_for_domain("acr-eu-prd.samsungcloud.tv").empty());
    EXPECT_TRUE(reader.blocks_for_domain("never-queried.example.com").empty());

    // Time-range queries respect block boundaries.
    const SimTime mid = reader.blocks()[2].first_ts;
    const auto ranged = reader.blocks_in_range(mid, SimTime::hours(1));
    ASSERT_FALSE(ranged.empty());
    for (const std::size_t b : ranged) EXPECT_GE(reader.blocks()[b].last_ts, mid);
    EXPECT_EQ(reader.first_block_at_or_after(SimTime{}), 0U);
    EXPECT_EQ(reader.first_block_at_or_after(SimTime::hours(2)), reader.blocks().size());
}

// ------------------------------------------------------------- determinism

TEST(ReplayDeterminismTest, ReplayFromBlockZeroMatchesBatchAtWorkerCounts148) {
    const auto capture = replay_capture();
    TvcrOptions tvcr_options;
    tvcr_options.block_records = 32;
    const Bytes tvcr = to_tvcr_bytes(capture, tvcr_options);

    const std::string reference = batch_report(capture);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        SCOPED_TRACE(workers);
        common::ThreadPool pool(workers);
        analysis::StreamOptions stream;
        stream.shards = workers * 2;
        stream.pool = workers > 1 ? &pool : nullptr;

        // The batch engine itself is worker-invariant...
        EXPECT_EQ(batch_report(capture, stream), reference);

        // ...and replay reproduces it byte-for-byte.
        auto reader = TvcrReader::from_bytes(tvcr);
        ASSERT_TRUE(reader.ok());
        ReplayEngine engine(std::move(reader).value());
        ReplayOptions options;
        options.stream = stream;
        auto replayed = engine.run(kDevice, options);
        ASSERT_TRUE(replayed.ok()) << replayed.error().message;
        EXPECT_EQ(canonical_report(replayed.value()), reference);
        EXPECT_EQ(engine.last_stats().records_replayed, capture.size());
    }
}

TEST(ReplayDeterminismTest, ReplayFromInteriorBlockEqualsBatchSuffix) {
    const auto capture = replay_capture();
    TvcrOptions tvcr_options;
    tvcr_options.block_records = 16;
    const Bytes tvcr = to_tvcr_bytes(capture, tvcr_options);
    auto opened = TvcrReader::from_bytes(tvcr);
    ASSERT_TRUE(opened.ok());
    const std::size_t blocks = opened.value().blocks().size();
    ASSERT_GT(blocks, 3U);

    common::ThreadPool pool(4);
    for (const std::size_t from : {std::size_t{1}, blocks / 2, blocks - 1}) {
        SCOPED_TRACE(from);
        const std::uint64_t first = opened.value().blocks()[from].first_index;
        const std::vector<net::Packet> suffix(capture.begin() +
                                                  static_cast<std::ptrdiff_t>(first),
                                              capture.end());
        for (const std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
            SCOPED_TRACE(workers);
            analysis::StreamOptions stream;
            stream.shards = workers * 2;
            stream.pool = workers > 1 ? &pool : nullptr;

            auto reader = TvcrReader::from_bytes(tvcr);
            ASSERT_TRUE(reader.ok());
            ReplayEngine engine(std::move(reader).value());
            ReplayOptions options;
            options.from_block = from;
            options.stream = stream;
            auto replayed = engine.run(kDevice, options);
            ASSERT_TRUE(replayed.ok()) << replayed.error().message;
            EXPECT_EQ(canonical_report(replayed.value()), batch_report(suffix, stream));
            EXPECT_EQ(engine.last_stats().blocks_skipped, from);
        }
    }
    // Resuming past the end is an error, one block past the last is empty.
    auto reader = TvcrReader::from_bytes(tvcr);
    ASSERT_TRUE(reader.ok());
    ReplayEngine engine(std::move(reader).value());
    ReplayOptions at_end;
    at_end.from_block = blocks;
    auto empty = engine.run(kDevice, at_end);
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(empty.value().packets_total(), 0U);
    ReplayOptions past_end;
    past_end.from_block = blocks + 1;
    EXPECT_FALSE(engine.run(kDevice, past_end).ok());
}

TEST(ReplayDeterminismTest, SinceEqualsBatchOverFilteredCapture) {
    const auto capture = replay_capture();
    TvcrOptions tvcr_options;
    tvcr_options.block_records = 16;
    const Bytes tvcr = to_tvcr_bytes(capture, tvcr_options);

    for (const std::int64_t cutoff_ms : {0LL, 500LL, 1200LL, 10'000'000LL}) {
        SCOPED_TRACE(cutoff_ms);
        const SimTime since = SimTime::millis(cutoff_ms);
        std::vector<net::Packet> filtered;
        for (const auto& packet : capture) {
            if (packet.timestamp >= since) filtered.push_back(packet);
        }
        auto reader = TvcrReader::from_bytes(tvcr);
        ASSERT_TRUE(reader.ok());
        ReplayEngine engine(std::move(reader).value());
        ReplayOptions options;
        options.since = since;
        auto replayed = engine.run(kDevice, options);
        ASSERT_TRUE(replayed.ok()) << replayed.error().message;
        EXPECT_EQ(canonical_report(replayed.value()), batch_report(filtered));
        EXPECT_EQ(engine.last_stats().records_replayed, filtered.size());
    }
}

// -------------------------------------------------------------- corruption

TEST(TvcrCorruptionTest, EveryTruncationFailsCleanly) {
    TvcrOptions options;
    options.block_records = 16;
    const Bytes tvcr = to_tvcr_bytes(replay_capture(), options);
    // Sweep every prefix length (stepping through the interior, exhaustive
    // near the structural boundaries): opening must return an Error — a
    // truncated trailer, a short index, or an out-of-bounds block extent —
    // and never crash or succeed.
    std::vector<std::size_t> lengths;
    for (std::size_t len = 0; len < tvcr.size(); len += 17) lengths.push_back(len);
    for (std::size_t back = 1; back <= 64 && back < tvcr.size(); ++back) {
        lengths.push_back(tvcr.size() - back);
    }
    for (const std::size_t len : lengths) {
        EXPECT_FALSE(TvcrReader::from_bytes(BytesView(tvcr.data(), len)).ok())
            << "prefix of " << len << " bytes parsed successfully";
    }
}

TEST(TvcrCorruptionTest, BitFlipsNeverCrashAndPayloadFlipsAreDetected) {
    TvcrOptions options;
    options.block_records = 16;
    const Bytes tvcr = to_tvcr_bytes(replay_capture(), options);

    // Flip one bit at a sweep of positions. Open + full block scan must
    // return ok-or-Error everywhere (the sanitizer lanes turn any OOB or UB
    // into a failure); the CRCs make payload corruption loudly detectable.
    for (std::size_t pos = 0; pos < tvcr.size(); pos += 13) {
        Bytes corrupt = tvcr;
        corrupt[pos] ^= 0x10;
        auto reader = TvcrReader::from_bytes(corrupt);
        if (!reader.ok()) continue;  // clean structural rejection
        for (std::size_t b = 0; b < reader.value().blocks().size(); ++b) {
            (void)reader.value().read_block(b);  // must not crash; Result either way
        }
    }

    // A flip inside the first block's compressed payload is always caught by
    // the payload CRC.
    Bytes corrupt = tvcr;
    corrupt[kTvcrHeaderLen + 61] ^= 0x01;  // first payload byte of block 0
    auto reader = TvcrReader::from_bytes(corrupt);
    ASSERT_TRUE(reader.ok());  // index is intact, open succeeds
    auto block = reader.value().read_block(0);
    ASSERT_FALSE(block.ok());
    EXPECT_NE(block.error().message.find("checksum"), std::string::npos)
        << block.error().message;
}

Bytes patch_u64_be(Bytes data, std::size_t offset, std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
        data[offset + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(value >> (56 - 8 * i));
    }
    return data;
}

Bytes patch_u32_be(Bytes data, std::size_t offset, std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
        data[offset + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(value >> (24 - 8 * i));
    }
    return data;
}

TEST(TvcrCorruptionTest, IndexPointingPastEofIsRejected) {
    const Bytes tvcr = to_tvcr_bytes(replay_capture());
    const std::size_t trailer = tvcr.size() - kTvcrTrailerLen;
    // index_offset beyond the file.
    auto past_eof = patch_u64_be(tvcr, trailer, tvcr.size() + 1000);
    auto reader = TvcrReader::from_bytes(past_eof);
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.error().message.find("out of bounds"), std::string::npos);
    // index_len running past the trailer.
    auto oversized = patch_u32_be(tvcr, trailer + 8, 0x7FFFFFFFU);
    EXPECT_FALSE(TvcrReader::from_bytes(oversized).ok());
    // index_offset before the header ends.
    auto underflow = patch_u64_be(tvcr, trailer, 3);
    EXPECT_FALSE(TvcrReader::from_bytes(underflow).ok());
    // A flip inside the index region trips the index CRC.
    ByteReader trailer_reader(BytesView(tvcr.data() + trailer, 8));
    const std::uint64_t index_offset = trailer_reader.u64().value();
    Bytes index_flip = tvcr;
    index_flip[static_cast<std::size_t>(index_offset) + 5] ^= 0x40;
    auto flipped = TvcrReader::from_bytes(index_flip);
    ASSERT_FALSE(flipped.ok());
    EXPECT_NE(flipped.error().message.find("checksum"), std::string::npos);
}

TEST(TvcrCorruptionTest, ForeignMagicsAreRejected) {
    EXPECT_FALSE(TvcrReader::from_bytes(BytesView{}).ok());
    const Bytes pcap = net::to_pcap_bytes(replay_capture());
    EXPECT_FALSE(TvcrReader::from_bytes(pcap).ok());
    Bytes wrong_version = to_tvcr_bytes(replay_capture());
    wrong_version[5] = 0x7F;  // version field, big-endian low byte
    EXPECT_FALSE(TvcrReader::from_bytes(wrong_version).ok());
}

TEST(TvcrCorruptionTest, FileReaderReportsMissingAndTruncatedFiles) {
    EXPECT_FALSE(TvcrReader::open("/nonexistent/capture.tvcr").ok());
    EXPECT_FALSE(ReplayEngine::open("/nonexistent/capture.tvcr").ok());
}

}  // namespace
}  // namespace tvacr::replay
