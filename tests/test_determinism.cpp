// Determinism guarantees of the parallel campaign engine: a sweep run on
// one worker and on eight workers must be *identical* — same ACR events,
// same per-domain KB, same packet counts — because every matrix cell is an
// isolated simulation and the engine reassembles results in matrix order.
// Same-seed runs are bit-identical down to the capture bytes; different
// seeds diverge.
#include <gtest/gtest.h>

#include "core/matrix_runner.hpp"
#include "fault/spec.hpp"
#include "net/pcap.hpp"

namespace tvacr::core {
namespace {

MatrixSpec uk_us_matrix(std::uint64_t seed) {
    MatrixSpec matrix;
    matrix.countries = {tv::Country::kUk, tv::Country::kUs};
    matrix.phases = {tv::Phase::kLInOIn};
    matrix.duration = SimTime::minutes(2);
    matrix.seed = seed;
    return matrix;
}

void expect_traces_identical(const std::vector<ScenarioTrace>& a,
                             const std::vector<ScenarioTrace>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].spec.name());
        EXPECT_EQ(a[i].spec.name(), b[i].spec.name());
        // Exact double equality is intentional: identical simulations must
        // produce identical arithmetic, not merely close results.
        EXPECT_EQ(a[i].total_acr_kb, b[i].total_acr_kb);
        EXPECT_EQ(a[i].kb_per_domain, b[i].kb_per_domain);
        ASSERT_EQ(a[i].acr_events.size(), b[i].acr_events.size());
        for (std::size_t e = 0; e < a[i].acr_events.size(); ++e) {
            EXPECT_EQ(a[i].acr_events[e].timestamp, b[i].acr_events[e].timestamp);
            EXPECT_EQ(a[i].acr_events[e].frame_bytes, b[i].acr_events[e].frame_bytes);
            EXPECT_EQ(a[i].acr_events[e].device_to_server, b[i].acr_events[e].device_to_server);
        }
        ASSERT_EQ(a[i].per_domain.size(), b[i].per_domain.size());
        for (const auto& [domain, events] : a[i].per_domain) {
            const auto it = b[i].per_domain.find(domain);
            ASSERT_NE(it, b[i].per_domain.end()) << domain;
            EXPECT_EQ(events.size(), it->second.size()) << domain;
        }
    }
}

TEST(MatrixDeterminismTest, UkUsSweepIdenticalWithOneAndEightWorkers) {
    const MatrixSpec matrix = uk_us_matrix(/*seed=*/2024);
    const auto serial = MatrixRunner(1).run(matrix);
    const auto parallel = MatrixRunner(8).run(matrix);
    ASSERT_EQ(serial.size(), 24U);  // 2 countries x 6 scenarios x 2 brands
    expect_traces_identical(serial, parallel);
}

TEST(MatrixDeterminismTest, RunSweepMatchesSerialForAnyWorkerCount) {
    const auto serial = CampaignRunner::run_sweep(tv::Country::kUk, tv::Phase::kLInOIn,
                                                  SimTime::minutes(2), /*seed=*/7, /*jobs=*/1);
    const auto parallel = CampaignRunner::run_sweep(tv::Country::kUk, tv::Phase::kLInOIn,
                                                    SimTime::minutes(2), /*seed=*/7, /*jobs=*/8);
    expect_traces_identical(serial, parallel);
}

TEST(MatrixDeterminismTest, SameSeedCapturesAreBitIdentical) {
    // Down to the pcap bytes: captures from two parallel runs of the same
    // matrix must match byte for byte.
    MatrixSpec matrix = uk_us_matrix(/*seed=*/99);
    matrix.scenarios = {tv::Scenario::kLinear};  // keep captures small
    const auto specs = MatrixRunner::expand(matrix);
    ASSERT_EQ(specs.size(), 4U);
    const auto first = MatrixRunner(8).run_experiments(specs);
    const auto second = MatrixRunner(8).run_experiments(specs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        SCOPED_TRACE(specs[i].name());
        EXPECT_EQ(first[i].capture.size(), second[i].capture.size());
        EXPECT_EQ(net::to_pcap_bytes(first[i].capture), net::to_pcap_bytes(second[i].capture));
        EXPECT_EQ(first[i].batches_uploaded, second[i].batches_uploaded);
        EXPECT_EQ(first[i].backend_matches, second[i].backend_matches);
    }
}

TEST(MatrixDeterminismTest, MetricsAndTraceBytesIdenticalAcrossWorkerCounts) {
    // The observability layer is part of the determinism contract: the
    // merged metrics JSON/CSV and the merged sim-time trace must be
    // byte-identical between --jobs 1 and --jobs 8 for the same seed.
    MatrixSpec matrix = uk_us_matrix(/*seed=*/2024);
    matrix.scenarios = {tv::Scenario::kLinear, tv::Scenario::kIdle};
    matrix.trace = true;
    const auto serial = MatrixRunner(1).run(matrix);
    const auto parallel = MatrixRunner(8).run(matrix);
    ASSERT_EQ(serial.size(), parallel.size());

    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].spec.name());
        EXPECT_EQ(serial[i].metrics.to_json(), parallel[i].metrics.to_json());
    }

    const std::string serial_json = merged_metrics(serial).to_json();
    const std::string parallel_json = merged_metrics(parallel).to_json();
    EXPECT_EQ(serial_json, parallel_json);
    EXPECT_EQ(merged_metrics(serial).to_csv(), merged_metrics(parallel).to_csv());
    // The sweep actually produced traffic, and the emission points fired.
    EXPECT_NE(serial_json.find("\"dns.queries\""), std::string::npos);
    EXPECT_NE(serial_json.find("\"tcp.connects\""), std::string::npos);
    EXPECT_NE(serial_json.find("\"acr.batches\""), std::string::npos);
    EXPECT_NE(serial_json.find("\"ap.frames\""), std::string::npos);

    EXPECT_EQ(merged_trace(serial).to_chrome_json(), merged_trace(parallel).to_chrome_json());
    EXPECT_FALSE(merged_trace(serial).empty());
}

TEST(MatrixDeterminismTest, ImpairedSweepIdenticalAcrossWorkerCounts) {
    // The fault layer joins the determinism contract: a campaign run over
    // the canonical impaired link must replay byte-identically for any
    // --jobs value. Every impairment decision draws from a substream keyed
    // by (seed, link-id, direction) against the sim clock, so worker count
    // and scheduling order cannot leak into the verdict sequence.
    MatrixSpec matrix = uk_us_matrix(/*seed=*/2024);
    matrix.scenarios = {tv::Scenario::kLinear, tv::Scenario::kIdle};
    matrix.faults = fault::canonical_fault_spec();
    const auto specs = MatrixRunner::expand(matrix);
    for (const auto& spec : specs) EXPECT_EQ(spec.faults, matrix.faults);

    const auto serial = MatrixRunner(1).run_experiments(specs);
    const auto parallel = MatrixRunner(8).run_experiments(specs);
    ASSERT_EQ(serial.size(), parallel.size());
    bool any_damage = false;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(specs[i].name());
        EXPECT_EQ(net::to_pcap_bytes(serial[i].capture), net::to_pcap_bytes(parallel[i].capture));
        EXPECT_EQ(serial[i].metrics.to_json(), parallel[i].metrics.to_json());
        EXPECT_EQ(serial[i].batches_uploaded, parallel[i].batches_uploaded);
        EXPECT_EQ(serial[i].backend_matches, parallel[i].backend_matches);
        if (serial[i].metrics.counter_value("link.dropped") > 0) any_damage = true;
    }
    // The sweep was genuinely impaired, not a clean run in disguise.
    EXPECT_TRUE(any_damage);
}

TEST(MatrixDeterminismTest, ImpairedRunsReplayAcrossRepeatedInvocations) {
    // Same impaired matrix, two fresh runner instances: byte-identical
    // artifacts. Catches hidden state leaking between runs (static RNGs,
    // reused substream cursors) that a single jobs-1-vs-8 comparison could
    // miss.
    MatrixSpec matrix = uk_us_matrix(/*seed=*/77);
    matrix.countries = {tv::Country::kUk};
    matrix.scenarios = {tv::Scenario::kLinear};
    matrix.faults = fault::canonical_fault_spec();
    const auto specs = MatrixRunner::expand(matrix);
    const auto first = MatrixRunner(4).run_experiments(specs);
    const auto second = MatrixRunner(4).run_experiments(specs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        SCOPED_TRACE(specs[i].name());
        EXPECT_EQ(net::to_pcap_bytes(first[i].capture), net::to_pcap_bytes(second[i].capture));
        EXPECT_EQ(first[i].metrics.to_json(), second[i].metrics.to_json());
    }
}

TEST(MatrixDeterminismTest, ProfilingDoesNotPerturbMetrics) {
    // Wall-clock profiling writes only into the caller's profile scope; the
    // deterministic per-cell metrics are unaffected by whether it is on.
    MatrixSpec matrix = uk_us_matrix(/*seed=*/5);
    matrix.countries = {tv::Country::kUk};
    matrix.scenarios = {tv::Scenario::kLinear};
    MatrixRunner plain(8);
    MatrixRunner profiled(8);
    obs::Scope profile;
    profiled.set_profile(&profile);
    const auto without = plain.run(matrix);
    const auto with = profiled.run(matrix);
    EXPECT_EQ(merged_metrics(without).to_json(), merged_metrics(with).to_json());
    // One runner span and one observation per cell landed in the profile.
    EXPECT_EQ(profile.trace.events().size(), with.size());
    const auto* run_hist = profile.metrics.histogram_data("runner.run_us");
    ASSERT_NE(run_hist, nullptr);
    EXPECT_EQ(run_hist->count, with.size());
}

TEST(MatrixDeterminismTest, DifferentSeedsDiverge) {
    MatrixSpec matrix = uk_us_matrix(/*seed=*/1);
    matrix.countries = {tv::Country::kUk};
    matrix.scenarios = {tv::Scenario::kLinear};
    MatrixSpec other = matrix;
    other.seed = 2;
    const auto a = MatrixRunner(2).run_experiments(MatrixRunner::expand(matrix));
    const auto b = MatrixRunner(2).run_experiments(MatrixRunner::expand(other));
    ASSERT_EQ(a.size(), b.size());
    bool any_difference = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (net::to_pcap_bytes(a[i].capture) != net::to_pcap_bytes(b[i].capture)) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST(MatrixDeterminismTest, ExpandEnumeratesInMatrixOrder) {
    MatrixSpec matrix;
    matrix.countries = {tv::Country::kUk, tv::Country::kUs};
    matrix.phases = {tv::Phase::kLInOIn, tv::Phase::kLInOOut};
    matrix.scenarios = {tv::Scenario::kIdle, tv::Scenario::kLinear};
    const auto specs = MatrixRunner::expand(matrix);
    ASSERT_EQ(specs.size(), 2U * 2U * 2U * 2U);
    // Brand flips fastest, then scenario, then phase, then country.
    EXPECT_EQ(specs[0].name(), "LG/UK/Idle/LIn-OIn");
    EXPECT_EQ(specs[1].name(), "Samsung/UK/Idle/LIn-OIn");
    EXPECT_EQ(specs[2].name(), "LG/UK/Linear/LIn-OIn");
    EXPECT_EQ(specs[8].name(), "LG/US/Idle/LIn-OIn");
}

}  // namespace
}  // namespace tvacr::core
