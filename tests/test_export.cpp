// Tests for the JSON writer and the machine-readable result exports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/json.hpp"
#include "core/export.hpp"

namespace tvacr {
namespace {

using analysis::JsonWriter;

// ------------------------------------------------------------- JSON writer

TEST(JsonWriterTest, FlatObject) {
    JsonWriter json;
    json.begin_object();
    json.key("name").value("eu-acrX.alphonso.tv");
    json.key("kb").value(4759.7);
    json.key("packets").value(std::uint64_t{563});
    json.key("acr").value(true);
    json.key("missing").null();
    json.end_object();
    EXPECT_EQ(json.text(),
              R"({"name":"eu-acrX.alphonso.tv","kb":4759.7,"packets":563,"acr":true,)"
              R"("missing":null})");
}

TEST(JsonWriterTest, NestedContainers) {
    JsonWriter json;
    json.begin_object();
    json.key("rows").begin_array();
    json.begin_object().key("a").value(1).end_object();
    json.begin_object().key("a").value(2).end_object();
    json.end_array();
    json.end_object();
    EXPECT_EQ(json.text(), R"({"rows":[{"a":1},{"a":2}]})");
}

TEST(JsonWriterTest, ArrayOfScalars) {
    JsonWriter json;
    json.begin_array();
    json.value(1).value(2.5).value("x").value(false);
    json.end_array();
    EXPECT_EQ(json.text(), R"([1,2.5,"x",false])");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
    JsonWriter json;
    json.begin_array();
    json.value(std::nan(""));
    json.value(std::numeric_limits<double>::infinity());
    json.end_array();
    EXPECT_EQ(json.text(), "[null,null]");
}

// ----------------------------------------------------------------- exports

TEST(ExportTest, TraceJsonContainsDomainsAndTotals) {
    core::ScenarioTrace trace;
    trace.spec.brand = tv::Brand::kLg;
    trace.spec.country = tv::Country::kUk;
    trace.spec.scenario = tv::Scenario::kLinear;
    trace.spec.phase = tv::Phase::kLInOIn;
    trace.spec.duration = SimTime::hours(1);
    trace.total_acr_kb = 4759.7;
    trace.kb_per_domain["eu-acrX.alphonso.tv"] = 4759.7;

    const std::string json = core::trace_to_json(trace);
    EXPECT_NE(json.find(R"("brand":"LG")"), std::string::npos);
    EXPECT_NE(json.find(R"("scenario":"Antenna")"), std::string::npos);
    EXPECT_NE(json.find(R"("eu-acrX.alphonso.tv":4759.7)"), std::string::npos);
}

TEST(ExportTest, SweepJsonAttachesPaperCells) {
    core::ScenarioTrace trace;
    trace.spec.brand = tv::Brand::kLg;
    trace.spec.country = tv::Country::kUk;
    trace.spec.scenario = tv::Scenario::kLinear;
    trace.spec.phase = tv::Phase::kLInOIn;
    trace.kb_per_domain["eu-acrX.alphonso.tv"] = 4800.0;

    const std::string json =
        core::sweep_to_json({trace}, tv::Country::kUk, tv::Phase::kLInOIn);
    // The paper's Table 2 Antenna cell for this domain is 4759.7.
    EXPECT_NE(json.find(R"("paper_kb":{"eu-acrX.alphonso.tv":4759.7})"), std::string::npos);
}

TEST(ExportTest, AuditJsonEndToEnd) {
    core::AuditConfig config;
    config.brand = tv::Brand::kLg;
    config.country = tv::Country::kUk;
    config.duration = SimTime::minutes(4);
    config.seed = 12;
    const auto report = core::AuditPipeline::run(config);
    const std::string json = core::audit_to_json(report);
    EXPECT_NE(json.find(R"("findings":[)"), std::string::npos);
    EXPECT_NE(json.find(R"("geolocation":[)"), std::string::npos);
    EXPECT_NE(json.find(R"("verdict":true)"), std::string::npos);
    // Every quote is escaped / structure balanced: crude brace check.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace tvacr
